//go:build linux

package core

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/docroot"
	"repro/internal/httpwire"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/reactor"
	"repro/internal/sysfault"
)

// Config parameterizes the event-driven server.
type Config struct {
	// Port to listen on (0 picks a free port; see Server.Port).
	Port int
	// Workers is the number of reactor worker threads under the legacy
	// single-acceptor topology (the paper's key knob: 1–2 suffice on a
	// uniprocessor, 2 on the 4-way SMP). Ignored when Shards > 0.
	Workers int
	// Shards selects the N-reactor sharded architecture: N independent
	// event loops, each with its own epoll instance, wakeup pipe, timer
	// wheel, connection table, and deterministic fault lane, accepting
	// directly from the shared port via SO_REUSEPORT so the kernel
	// hashes incoming connections across the shards with no shared
	// accept lock. 0 keeps the legacy topology: one blocking acceptor
	// thread fanning accepted fds out to Workers reactor loops.
	Shards int
	// AcceptFanout forces the single-acceptor fan-out path even when
	// Shards > 0: each shard still runs its own loop, wheel, and fault
	// lane, but accepted fds arrive over a lock-free SPSC ring from the
	// acceptor thread instead of a per-shard listener. This is also the
	// automatic fallback when the kernel rejects SO_REUSEPORT.
	AcceptFanout bool
	// Backlog is the listen(2) backlog.
	Backlog int
	// ReadBuf is the per-read buffer size.
	ReadBuf int
	// Store serves the content from memory. Required unless Docroot is
	// set.
	Store Store
	// Docroot, when non-nil, serves real files from disk through the
	// bounded content cache instead of Store: cache hits are written
	// from memory, misses are delivered zero-copy with non-blocking
	// sendfile(2) from the reactor loop, and conditional GETs
	// (If-None-Match / If-Modified-Since) are answered with 304.
	Docroot *docroot.Root
	// IdleTimeout, when positive, disconnects connections with no
	// activity for this long — the policy a thread-pool server is
	// *forced* to adopt to recycle threads. The event-driven
	// architecture does not need it (a paper headline), so the default
	// is 0 = never; the knob exists for the live ablation that shows
	// the reset errors appear with the policy, not the architecture.
	IdleTimeout time.Duration
	// HeaderTimeout, when positive, bounds how long a connection may
	// take to deliver a complete request once one has begun (and how
	// long a fresh connection may take to send its first). Distinct
	// from IdleTimeout: an idle keep-alive connection between requests
	// is free to linger, but a peer that dribbles header bytes — a
	// slowloris — is reset when the clock runs out, so it cannot pin
	// parser buffers forever. 0 disables the guard.
	HeaderTimeout time.Duration
	// MaxConns, when positive, caps concurrently open connections:
	// excess accepts are answered with an immediate 503 and closed
	// (counted in Stats.Shed) instead of queuing without bound — the
	// *hard ceiling* for the connection-flood regime. 0 = unlimited.
	// The cap is global across shards (enforced with a CAS, so N
	// accepting shards cannot race past it together).
	MaxConns int
	// Admission, when non-nil, is the adaptive overload controller: it
	// is consulted on every accept (before the MaxConns ceiling), and
	// fed the accept-to-first-response latency of each admitted
	// connection so its AIMD loop can hold the configured p95 target.
	// Refused connections are shed with 503 + Retry-After + close.
	Admission *overload.Controller
	// Watchdog, when non-nil, monitors the acceptor and every reactor
	// shard for wedged loops: each thread registers a heartbeat at
	// Start and brackets its work with Begin/End, so a handler that
	// hangs the loop is flagged within roughly one watchdog interval.
	// The watchdog is caller-owned (it may be shared across servers)
	// and is not stopped by Stop.
	Watchdog *overload.Watchdog
	// HandlerFault, when non-nil, injects faults into request handling
	// (see Fault) — the hook the robustness tests drive panics and
	// wedges through. nil in production.
	HandlerFault FaultFunc
	// Obs, when non-nil, is the live observability plane: every
	// connection's lifecycle (accept, queue-wait, parse, handler,
	// first-byte, write, close/shed/panic) is traced into its ring and
	// the four phase latencies feed its histograms, all read live by the
	// admin endpoint. Each shard records into its own per-shard phase
	// block (obs.Plane.View) so the hot path stays uncontended; the
	// admin read side merges the blocks bucketwise. Every recording
	// site is behind a nil check, so a nil Obs costs nothing.
	Obs *obs.Plane
}

// DefaultConfig returns the paper's best uniprocessor configuration.
func DefaultConfig(store Store) Config {
	return Config{
		Workers: 1,
		Backlog: 1024,
		ReadBuf: 16 << 10,
		Store:   store,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Shards < 0:
		return fmt.Errorf("core: negative Shards %d", c.Shards)
	case c.Shards > sysfault.MaxLanes:
		return fmt.Errorf("core: Shards %d exceeds the %d supported fault lanes", c.Shards, sysfault.MaxLanes)
	case c.Shards == 0 && c.Workers <= 0:
		return fmt.Errorf("core: Workers must be positive, got %d", c.Workers)
	case c.Backlog <= 0:
		return fmt.Errorf("core: Backlog must be positive, got %d", c.Backlog)
	case c.ReadBuf < 256:
		return fmt.Errorf("core: ReadBuf must be at least 256, got %d", c.ReadBuf)
	case c.Store == nil && c.Docroot == nil:
		return fmt.Errorf("core: a Store or a Docroot is required")
	case c.Port < 0 || c.Port > 65535:
		return fmt.Errorf("core: invalid port %d", c.Port)
	case c.IdleTimeout < 0:
		return fmt.Errorf("core: negative IdleTimeout %v", c.IdleTimeout)
	case c.HeaderTimeout < 0:
		return fmt.Errorf("core: negative HeaderTimeout %v", c.HeaderTimeout)
	case c.MaxConns < 0:
		return fmt.Errorf("core: negative MaxConns %d", c.MaxConns)
	}
	return nil
}

// shardCount is the number of event loops this configuration runs.
func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return c.Workers
}

// Stats are the server's counters (all atomic; safe to read live).
type Stats struct {
	Accepted   int64
	Replies    int64
	BytesOut   int64
	NotFound   int64
	BadRequest int64
	ConnsOpen  int64
	IdleCloses int64
	// Shed counts connections refused with a 503 by MaxConns admission
	// control.
	Shed int64
	// HeaderTimeouts counts connections reset for failing to deliver a
	// complete request within HeaderTimeout (slowloris defense).
	HeaderTimeouts int64
	// NotModified counts 304 replies to conditional GETs (docroot only).
	NotModified int64
	// SendfileBytes counts body bytes delivered zero-copy via
	// sendfile(2); BytesOut includes them.
	SendfileBytes int64
	// HandlerPanics counts handler panics that were isolated to their
	// connection (best-effort 500 + close) instead of killing the
	// process.
	HandlerPanics int64
	// AcceptEMFILE counts accept attempts refused by the kernel for
	// descriptor exhaustion (EMFILE/ENFILE) and absorbed by the
	// reserve-descriptor recovery instead of killing the acceptor.
	AcceptEMFILE int64
	// AcceptBackoffs counts backoff waits taken by the accept gate
	// after resource-exhausted accepts (instead of hot-spinning on a
	// level-triggered listener that stays readable).
	AcceptBackoffs int64
	// WriteStalls counts ENOBUFS write failures absorbed by re-arming
	// write interest instead of tearing the connection down.
	WriteStalls int64
	// WriteResets counts connections torn down by a peer reset or
	// broken pipe mid-response (distinct from generic write errors).
	WriteResets int64
	// SendfileFallbacks counts sendfile(2) failures recovered by
	// switching the in-flight response to buffered delivery from the
	// same resume offset — the response bytes stay correct.
	SendfileFallbacks int64
}

// statBlock is one owner's set of server counters: each shard has its
// own block (so the hot path never bounces a shared cache line between
// loops) and the acceptor thread has one for the accept-side counters
// it owns under fan-out. Server.Stats sums the blocks — plain
// addition, so the merged view is exact, not sampled.
type statBlock struct {
	accepted          counter
	replies           counter
	bytesOut          counter
	notFound          counter
	badRequest        counter
	idleCloses        counter
	shed              counter
	headerTimeouts    counter
	notModified       counter
	sendfileBytes     counter
	handlerPanics     counter
	acceptEMFILE      counter
	acceptBackoffs    counter
	writeStalls       counter
	writeResets       counter
	sendfileFallbacks counter
}

// addInto accumulates this block into st. ConnsOpen is not a block
// field: it is the one genuinely global gauge (the MaxConns ceiling is
// global), kept on the Server.
func (b *statBlock) addInto(st *Stats) {
	st.Accepted += b.accepted.get()
	st.Replies += b.replies.get()
	st.BytesOut += b.bytesOut.get()
	st.NotFound += b.notFound.get()
	st.BadRequest += b.badRequest.get()
	st.IdleCloses += b.idleCloses.get()
	st.Shed += b.shed.get()
	st.HeaderTimeouts += b.headerTimeouts.get()
	st.NotModified += b.notModified.get()
	st.SendfileBytes += b.sendfileBytes.get()
	st.HandlerPanics += b.handlerPanics.get()
	st.AcceptEMFILE += b.acceptEMFILE.get()
	st.AcceptBackoffs += b.acceptBackoffs.get()
	st.WriteStalls += b.writeStalls.get()
	st.WriteResets += b.writeResets.get()
	st.SendfileFallbacks += b.sendfileFallbacks.get()
}

// Server is the live event-driven web server.
type Server struct {
	cfg  Config
	port int
	// lfd is the shared listener under fan-out; -1 in reuseport mode,
	// where each shard owns its own listening socket instead.
	lfd int
	// shardLfds holds the per-shard SO_REUSEPORT listeners between
	// NewServer and Start (Start hands them to the shards; a Stop
	// before Start closes them here).
	shardLfds []int
	// fanout records the accept topology actually in effect: true for
	// the single-acceptor path (legacy Workers mode, forced
	// AcceptFanout, or SO_REUSEPORT unavailable).
	fanout  bool
	started bool

	shards    []*shard
	acceptor  *reactor.Poller
	wg        sync.WaitGroup
	stopping  chan struct{}
	stopOnce  sync.Once
	draining  chan struct{}
	drainOnce sync.Once

	// connsOpen is the global open-connection gauge; tryAcquireConn
	// CASes against it so the MaxConns ceiling holds exactly even with
	// N shards accepting concurrently.
	connsOpen counter
	// acceptStats holds the accept-side counters owned by the fan-out
	// acceptor thread (zero in reuseport mode, where shards accept).
	acceptStats *statBlock
	// obsAccept is the acceptor's observability view (shard-0 block).
	obsAccept *obs.View

	// reserveFD is one descriptor held on /dev/null purely so the
	// acceptor can close it to free a slot when accept(2) reports
	// EMFILE, accept-and-503 the pending connection, and re-arm.
	// Owned by the acceptor thread once Start has run; in reuseport
	// mode each shard holds its own reserve instead.
	reserveFD int
}

// counter is a tiny atomic counter (avoids importing metrics here).
type counter struct{ v int64 }

func (c *counter) add(d int64) { atomicAdd(&c.v, d) }
func (c *counter) get() int64  { return atomicLoad(&c.v) }
func (c *counter) cas(old, new int64) bool {
	return atomicCAS(&c.v, old, new)
}

// NewServer validates the configuration and binds the listener(s);
// call Start to begin serving. In sharded mode every per-shard
// SO_REUSEPORT listener is bound here, up front, so a port conflict or
// an unsupported kernel surfaces before any thread starts; the kernel
// begins hashing connections across the listeners the moment the first
// shard loop runs.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		lfd:         -1,
		stopping:    make(chan struct{}),
		draining:    make(chan struct{}),
		acceptStats: &statBlock{},
		reserveFD:   -1,
	}
	if pl := cfg.Obs; pl != nil {
		s.obsAccept = pl.View(0)
	}
	fanout := cfg.Shards <= 0 || cfg.AcceptFanout
	if !fanout {
		port := cfg.Port
		for i := 0; i < cfg.Shards; i++ {
			lfd, p, err := reactor.ListenReusePort(port, cfg.Backlog)
			if err != nil {
				for _, fd := range s.shardLfds {
					reactor.CloseFD(0, fd)
				}
				s.shardLfds = nil
				if i == 0 {
					// SO_REUSEPORT itself may be what failed (old
					// kernel); the fan-out path needs no such support,
					// so fall back rather than refuse to serve. A
					// plain bind conflict fails again below and is
					// reported from there.
					fanout = true
					break
				}
				return nil, err
			}
			port = p
			s.shardLfds = append(s.shardLfds, lfd)
		}
		if !fanout {
			s.port = port
		}
	}
	if fanout {
		lfd, port, err := reactor.Listen(cfg.Port, cfg.Backlog)
		if err != nil {
			return nil, err
		}
		s.lfd = lfd
		s.port = port
		s.reserveFD = openReserve()
	}
	s.fanout = fanout
	return s, nil
}

// openReserve opens the fd-exhaustion reserve descriptor (see
// Server.reserveFD). A failure to open it (-1) only disables the
// recovery, never the server.
func openReserve() int {
	fd, err := syscall.Open("/dev/null", syscall.O_RDONLY|syscall.O_CLOEXEC, 0)
	if err != nil {
		return -1
	}
	return fd
}

// Port returns the bound port.
func (s *Server) Port() int { return s.port }

// Addr returns the listen address.
func (s *Server) Addr() string { return fmt.Sprintf("127.0.0.1:%d", s.port) }

// NumShards returns the number of event loops this server runs.
func (s *Server) NumShards() int { return s.cfg.shardCount() }

// AcceptMode reports how connections reach the shards: "reuseport"
// (kernel accept sharding, each shard accepts from its own listener)
// or "fanout" (one acceptor thread distributing over SPSC rings).
func (s *Server) AcceptMode() string {
	if s.fanout {
		return "fanout"
	}
	return "reuseport"
}

// Stats returns a snapshot of the counters, summed across the accept
// side and every shard. Each addend is an atomic counter and the
// blocks are merged by plain addition, so the snapshot is exact up to
// the usual torn-read-across-counters caveat any live scrape has.
func (s *Server) Stats() Stats {
	var st Stats
	s.acceptStats.addInto(&st)
	for _, w := range s.shards {
		w.stats.addInto(&st)
	}
	st.ConnsOpen = s.connsOpen.get()
	return st
}

// ShardStats returns shard i's own counters. ConnsOpen is a global
// gauge and reported as 0 here; read it from Stats. Valid after Start.
func (s *Server) ShardStats(i int) Stats {
	var st Stats
	s.shards[i].stats.addInto(&st)
	return st
}

// tryAcquireConn claims one connsOpen slot under the MaxConns ceiling,
// reporting false when the server is full. With MaxConns unset it is a
// plain increment; with a ceiling it is a CAS loop, so concurrent
// accepting shards cannot overshoot the cap together.
func (s *Server) tryAcquireConn() bool {
	mc := s.cfg.MaxConns
	if mc <= 0 {
		s.connsOpen.add(1)
		return true
	}
	for {
		cur := s.connsOpen.get()
		if cur >= int64(mc) {
			return false
		}
		if s.connsOpen.cas(cur, cur+1) {
			return true
		}
	}
}

// Start launches the shard threads (and, under fan-out, the acceptor).
func (s *Server) Start() error {
	n := s.cfg.shardCount()
	fail := func(err error) error {
		for _, w := range s.shards {
			w.poller.Close()
			if w.reserve >= 0 {
				reactor.CloseFD(w.lane, w.reserve)
				w.reserve = -1
			}
		}
		s.shards = nil
		return err
	}
	for i := 0; i < n; i++ {
		w, err := newShard(s, i)
		if err != nil {
			return fail(err)
		}
		s.shards = append(s.shards, w)
	}
	if s.fanout {
		ap, err := reactor.NewPoller(64)
		if err != nil {
			return fail(err)
		}
		if err := ap.Add(s.lfd, true, false); err != nil {
			ap.Close()
			return fail(err)
		}
		s.acceptor = ap
	}
	s.started = true
	// Date-header ticker: one refresh per second, server-wide.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-s.stopping:
				return
			case now := <-t.C:
				httpwire.RefreshDate(now)
			}
		}
	}()
	for _, w := range s.shards {
		s.wg.Add(1)
		go w.loop()
	}
	if s.fanout {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	return nil
}

// Stop shuts the server down and waits for all threads to exit. Safe to
// call before Start: the bound listeners are closed so the fds do not
// leak, and nothing is waited on.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		if !s.started {
			// Never (fully) started: no thread owns the listeners or
			// the reserve yet, so they must be closed here or they
			// leak.
			if s.lfd >= 0 {
				reactor.CloseFD(0, s.lfd)
				s.lfd = -1
			}
			for _, fd := range s.shardLfds {
				reactor.CloseFD(0, fd)
			}
			s.shardLfds = nil
			if s.reserveFD >= 0 {
				reactor.CloseFD(0, s.reserveFD)
				s.reserveFD = -1
			}
			return
		}
		if s.acceptor != nil {
			s.acceptor.Wakeup()
		}
		for _, w := range s.shards {
			w.poller.Wakeup()
		}
	})
	s.wg.Wait()
}

// Drain gracefully shuts the server down: it stops accepting, closes
// idle connections immediately, lets every in-flight response finish
// flushing (up to timeout), and then stops. It reports whether all
// connections drained before the deadline; on false, the stragglers were
// cut off by Stop. During the drain no new requests are read — pending
// output is the only work left.
func (s *Server) Drain(timeout time.Duration) bool {
	s.drainOnce.Do(func() {
		close(s.draining)
		if s.started {
			if s.acceptor != nil {
				s.acceptor.Wakeup()
			}
			for _, w := range s.shards {
				w.poller.Wakeup()
			}
		}
	})
	drained := false
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.connsOpen.get() == 0 {
			drained = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Stop()
	return drained
}

// acceptLoop is the fan-out acceptor thread: it blocks in readiness
// selection on the shared listener and hands accepted fds to shards
// round-robin over their SPSC rings — the same split the paper's nio
// server uses (one acceptor + N workers). All its syscalls run on
// fault lane 0, the legacy deterministic stream.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer s.acceptor.Close()
	defer reactor.CloseFD(0, s.lfd)
	defer func() {
		if s.reserveFD >= 0 {
			reactor.CloseFD(0, s.reserveFD)
			s.reserveFD = -1
		}
	}()
	// The loop blocks in raw epoll_wait, which parks an OS thread; pin
	// the goroutine so it owns that thread outright (a reactor thread in
	// the paper's sense) instead of bouncing through scheduler handoffs.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var hb *overload.Heartbeat
	if wd := s.cfg.Watchdog; wd != nil {
		hb = wd.Register("core-acceptor")
	}
	rr := 0
	backoff := time.Duration(0)
	for {
		select {
		case <-s.stopping:
			return
		case <-s.draining:
			return // drain: stop accepting; shards finish in-flight work
		default:
		}
		evs, err := s.acceptor.Wait(-1)
		if err != nil {
			return
		}
		_ = evs
		if hb != nil {
			hb.Begin()
		}
		for {
			fd, done, err := reactor.Accept(0, s.lfd)
			if err != nil {
				if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
					// Descriptor exhaustion: recover via the reserve, then
					// back off. The listener stays readable (level-
					// triggered) while the table is full, so retrying
					// immediately would spin the acceptor dry; the gate
					// trades accept latency for CPU the shards need to
					// finish responses and free descriptors.
					s.acceptStats.acceptEMFILE.add(1)
					s.recoverFDExhaustion(0, s.lfd, &s.reserveFD, s.acceptStats, s.obsAccept)
					if backoff = s.acceptGate(hb, backoff); backoff < 0 {
						return // stopping
					}
					break
				}
				if errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM) {
					// Transient kernel memory pressure: nothing to free on
					// our side, just pace the retries.
					if backoff = s.acceptGate(hb, backoff); backoff < 0 {
						return
					}
					break
				}
				return // listener closed
			}
			if done {
				break
			}
			if fd < 0 {
				continue // transient (ECONNABORTED): the peer gave up first
			}
			backoff = 0
			s.acceptStats.accepted.add(1)
			// Adaptive admission first: the controller's token bucket
			// paces accepts against its latency target. Shed clients are
			// told when to come back.
			if ac := s.cfg.Admission; ac != nil && !ac.Admit() {
				s.acceptStats.shed.add(1)
				if v := s.obsAccept; v != nil {
					v.Record(0, obs.Shed, 0)
				}
				shedConn(0, fd, ac.RetryAfterSeconds())
				continue
			}
			// MaxConns stays as the hard ceiling above the controller.
			if !s.tryAcquireConn() {
				s.acceptStats.shed.add(1)
				if v := s.obsAccept; v != nil {
					v.Record(0, obs.Shed, 0)
				}
				shedConn(0, fd, shedRetryAfterSec)
				continue
			}
			w := s.shards[rr%len(s.shards)]
			rr++
			w.give(fd)
		}
		if hb != nil {
			hb.End()
		}
	}
}

// shedRetryAfterSec is the Retry-After advertised on sheds not governed
// by an admission controller (the static MaxConns ceiling).
const shedRetryAfterSec = 1

// shedConn answers an over-limit accept with a best-effort 503 — with
// Retry-After and Connection: close, so a well-behaved client backs off
// instead of hammering — and an immediate close. The socket is fresh, so
// the non-blocking write of the short header virtually always lands in
// the empty send buffer.
func shedConn(lane sysfault.Lane, fd int, retryAfterSec int) {
	resp := httpwire.AppendResponseHeaderExtra(nil, 503, "text/plain", 0, false,
		httpwire.Header{Name: "Retry-After", Value: strconv.Itoa(retryAfterSec)})
	_, _, _ = reactor.Write(lane, fd, resp)
	reactor.CloseFD(lane, fd)
}

// docrootPressureEvictions is how many cached entries (and so shared
// file descriptors) the accepting thread asks the docroot to give back
// per EMFILE event — enough to make real room, small enough not to
// dump a warm cache over one transient spike.
const docrootPressureEvictions = 8

// recoverFDExhaustion is the reserve-descriptor dance: close the
// reserve to free one slot, accept the connection the kernel is
// holding, answer it 503 + Retry-After so the client backs off
// instead of timing out in silence, close it, and re-open the
// reserve. Without this, the pending connection would sit in the
// accept queue until a descriptor freed by chance. When a docroot is
// configured, the cache is also asked to shed a few entries — cached
// content pins file descriptors, and under EMFILE giving those back
// attacks the exhaustion itself rather than just the symptom. The
// caller passes its own lane, listener, reserve slot, counters, and
// observability view: the fan-out acceptor and every reuseport shard
// run the identical recovery against their own listener.
func (s *Server) recoverFDExhaustion(lane sysfault.Lane, lfd int, reserve *int, st *statBlock, v *obs.View) {
	if dr := s.cfg.Docroot; dr != nil {
		dr.ShedFDs(docrootPressureEvictions)
	}
	if *reserve < 0 {
		return
	}
	reactor.CloseFD(lane, *reserve)
	*reserve = -1
	fd, done, err := reactor.Accept(lane, lfd)
	if err == nil && !done && fd >= 0 {
		st.shed.add(1)
		if v != nil {
			v.Record(0, obs.Shed, 0)
		}
		shedConn(lane, fd, shedRetryAfterSec)
	}
	*reserve = openReserve()
}

// Accept-gate backoff bounds: exponential from 5ms, capped at 250ms,
// reset to zero by any successful accept.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 250 * time.Millisecond
)

// acceptGate pauses the fan-out acceptor after a resource-exhausted
// accept, doubling the pause up to the cap. It returns the next
// backoff to use, or a negative duration if the server is stopping.
// The heartbeat span is closed across the pause — a gated acceptor is
// parked, not wedged, and must not trip the watchdog. (Reuseport
// shards gate differently — they must never block their event loop —
// see shard.gateAccept.)
func (s *Server) acceptGate(hb *overload.Heartbeat, backoff time.Duration) time.Duration {
	if backoff < acceptBackoffMin {
		backoff = acceptBackoffMin
	} else if backoff *= 2; backoff > acceptBackoffMax {
		backoff = acceptBackoffMax
	}
	s.acceptStats.acceptBackoffs.add(1)
	if hb != nil {
		hb.End()
	}
	defer func() {
		if hb != nil {
			hb.Begin()
		}
	}()
	select {
	case <-s.stopping:
		return -1
	case <-s.draining:
		return -1
	case <-time.After(backoff):
		return backoff
	}
}

// outSeg is one element of a connection's pending output: either a byte
// slice (headers, in-memory bodies) or a file range delivered zero-copy
// with sendfile(2). A file segment pins its docroot entry — and so the
// shared fd — until the range is fully sent or the connection dies.
type outSeg struct {
	buf []byte
	// ent is non-nil for a sendfile segment; off is the next unsent
	// file offset (advanced by the kernel on every call, so it is always
	// the resume point after a partial write) and end is one past the
	// last byte.
	ent *docroot.Entry
	off int64
	end int64
	// fallback flips a file segment from sendfile(2) to buffered
	// delivery after the kernel refuses the fast path (EINVAL/EIO):
	// each pass re-reads the file at off and writes it, so the
	// response bytes stay exact across the switch and across partial
	// writes. off/end keep their meaning; sendfile is never retried on
	// this segment.
	fallback bool
}

// conn is the per-connection state owned by exactly one shard.
//
//nio:loop-owned
type conn struct {
	fd     int
	parser httpwire.Parser
	// out is the pending response segment queue: each segment is written
	// non-blockingly; when the socket fills we keep the position and
	// wait for writability.
	out      []outSeg
	outOff   int  // sent bytes of the head segment's buf
	writeArm bool // EPOLLOUT currently requested
	closing  bool // close once out drains (400 or Connection: close)
	closed   bool // torn down; output must never be queued again
	// wheeled marks the connection as filed in its shard's timer wheel
	// (at most one entry per connection; see wheel.go).
	wheeled bool
	replies int64
	// lastActive is when the connection last made progress; the idle
	// policy (only armed when Config.IdleTimeout > 0) compares it.
	lastActive time.Time
	// acceptedAt is when the connection was accepted; observed flips
	// once the accept-to-first-response latency has been reported to
	// the admission controller (once per connection).
	acceptedAt time.Time
	observed   bool
	// headerStart, when non-zero, is when the connection started owing
	// us a complete request: set at accept and whenever a partial
	// request is buffered, cleared once a request completes and nothing
	// partial remains. The header policy (armed when
	// Config.HeaderTimeout > 0) resets connections that exceed it.
	headerStart time.Time
	// Observability-plane state, only maintained when Config.Obs is set:
	// the plane-assigned connection id, the first-byte-of-request and
	// handler-start stamps the phase clocks run from, the serve-complete
	// stamp the write phase closes against, and whether the first
	// response byte has been traced.
	obsID        uint64
	reqStart     time.Time
	handlerStart time.Time
	serveDone    time.Time
	firstByte    bool
}

// shard is one reactor event loop: its own poller (epoll fd + wakeup
// pipe), its own connection table, timer wheel, scratch buffers,
// counters, observability view, and deterministic fault lane. In
// reuseport mode it also owns a listening socket and accepts directly;
// under fan-out it receives accepted fds over its SPSC ring.
type shard struct {
	srv    *Server
	idx    int
	lane   sysfault.Lane
	poller *reactor.Poller
	// stats is this shard's counter block (merged by Server.Stats).
	stats *statBlock
	// obs is this shard's observability view: trace ring and kind
	// counts are shared (lock-free), phase histograms are per-shard
	// blocks merged at read time. nil when Config.Obs is nil.
	obs *obs.View
	// lfd is this shard's own SO_REUSEPORT listener; -1 under fan-out
	// or once the listener has been closed (drain, fatal accept error).
	lfd int
	// reserve is this shard's EMFILE reserve descriptor (reuseport
	// mode; -1 under fan-out, where the acceptor holds the reserve).
	reserve int
	// ring is the SPSC handoff from the acceptor (fan-out mode; nil in
	// reuseport mode).
	ring *spscRing
	// conns is this loop's connection table — the state reactor
	// sharding partitions, so it must never be touched off-loop.
	//nio:loop-owned
	conns map[int]*conn
	//nio:loop-owned
	buf []byte
	// fbuf is the lazily-allocated scratch for buffered sendfile
	// fallback (never aliased by the parser, unlike buf).
	//nio:loop-owned
	fbuf []byte
	//nio:loop-owned
	reqs []*httpwire.Request
	// draining is set once the server enters Drain: no new reads, flush
	// pending output, close as connections empty.
	//nio:loop-owned
	draining bool
	// hb is this reactor thread's watchdog heartbeat (nil when no
	// watchdog is configured). Spans bracket work, not the poller wait,
	// so a parked-but-healthy loop is never flagged.
	hb *overload.Heartbeat
	// loopTicks counts event-loop iterations so the invariant build can
	// amortize its O(conns) interest-set audit instead of paying it on
	// every pass through the hot loop.
	//nio:loop-owned
	loopTicks uint64
	// wheel is this shard's timer wheel (nil when neither timeout knob
	// is configured).
	//nio:loop-owned
	wheel *timerWheel
	// Accept-gate state (reuseport mode): after a resource-exhausted
	// accept the listener is REMOVED from the interest set and re-added
	// when the gate expires — the loop must keep serving its existing
	// connections, so it can never park in a blocking sleep the way the
	// dedicated acceptor thread does.
	//nio:loop-owned
	acceptGated bool
	//nio:loop-owned
	gateUntil time.Time
	//nio:loop-owned
	gateBackoff time.Duration
}

func newShard(s *Server, idx int) (*shard, error) {
	lane := sysfault.Lane(0)
	if s.cfg.Shards > 0 {
		// Shard i draws fault decisions from lane i: independent
		// deterministic streams per loop, with shard 0 on the legacy
		// stream so a single-shard server replays byte-identically to
		// the pre-sharding server. Legacy Workers mode keeps every
		// loop on lane 0, the historical behavior.
		lane = sysfault.Lane(idx)
	}
	p, err := reactor.NewPollerLane(1024, lane)
	if err != nil {
		return nil, err
	}
	w := &shard{
		srv:     s,
		idx:     idx,
		lane:    lane,
		poller:  p,
		stats:   &statBlock{},
		lfd:     -1,
		reserve: -1,
		conns:   make(map[int]*conn),
		buf:     make([]byte, s.cfg.ReadBuf),
		wheel:   newTimerWheel(s.cfg, time.Now()),
	}
	if s.fanout {
		w.ring = newSPSCRing(4096)
	} else {
		w.lfd = s.shardLfds[idx]
		if err := p.Add(w.lfd, true, false); err != nil {
			p.Close()
			return nil, err
		}
		w.reserve = openReserve()
	}
	if pl := s.cfg.Obs; pl != nil {
		w.obs = pl.View(idx)
	}
	if wd := s.cfg.Watchdog; wd != nil {
		w.hb = wd.Register(fmt.Sprintf("core-worker-%d", idx))
	}
	return w, nil
}

// pendingConn is an accepted fd in flight to a shard, stamped with its
// accept time so the admission controller's latency clock covers the
// ring wait as well as the event-loop lag.
type pendingConn struct {
	fd int
	at time.Time
}

// give transfers an accepted fd to this shard (called from the acceptor
// thread; Selector.wakeup semantics). The acceptor has already counted
// the connection in connsOpen, so every failure path must uncount it.
func (w *shard) give(fd int) {
	if !w.ring.push(pendingConn{fd: fd, at: time.Now()}) {
		// Ring overflow: shed the connection rather than block the
		// acceptor; this mirrors a full pending-registration queue.
		reactor.CloseFD(0, fd)
		w.srv.connsOpen.add(-1)
		return
	}
	w.poller.Wakeup()
}

// loop is the shard thread body: a classic reactor loop.
//
//nio:loop
func (w *shard) loop() {
	defer w.srv.wg.Done()
	defer w.shutdown()
	// Dedicated reactor thread (see acceptLoop).
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for {
		if w.hb != nil {
			w.hb.Begin()
		}
		w.drainInbox()
		if invariant.Enabled {
			// The full interest-set audit is O(conns); sample it so the
			// invariant build keeps enough throughput for the perf-gated
			// tests to stay meaningful.
			if w.loopTicks%64 == 0 {
				w.assertInterest()
			}
			w.loopTicks++
		}
		select {
		case <-w.srv.stopping:
			return
		default:
		}
		if !w.draining {
			select {
			case <-w.srv.draining:
				w.beginDrain()
			default:
			}
		}
		if w.draining && len(w.conns) == 0 {
			return // drained: every in-flight response has flushed
		}
		now := time.Now()
		w.reArmAccept(now)
		// The poller wait is a legitimate park, not work: close the
		// heartbeat span so an idle loop is never mistaken for a wedge.
		if w.hb != nil {
			w.hb.End()
		}
		evs, err := w.poller.Wait(w.waitMs(now))
		if err != nil {
			return
		}
		if w.hb != nil {
			w.hb.Begin()
		}
		now = time.Now()
		w.advanceWheel(now)
		for _, ev := range evs {
			if w.lfd >= 0 && ev.FD == w.lfd {
				if !w.draining {
					w.acceptReady(now)
				}
				continue
			}
			c, ok := w.conns[ev.FD]
			if !ok {
				continue
			}
			if ev.Hangup {
				w.closeConn(c)
				continue
			}
			if ev.Readable && !w.draining {
				w.readable(c)
			}
			if c2, still := w.conns[ev.FD]; still && c2 == c && ev.Writable {
				w.writable(c)
			}
		}
	}
}

// waitMs bounds the poller wait: one wheel tick while timers are
// pending, the gate remainder while the listener is gated, else block
// indefinitely (pure event-driven park).
func (w *shard) waitMs(now time.Time) int {
	ms := -1
	if wh := w.wheel; wh != nil && wh.count > 0 {
		ms = int(wh.tick.Milliseconds())
		if ms < 1 {
			ms = 1
		}
	}
	if w.acceptGated {
		g := int(w.gateUntil.Sub(now).Milliseconds()) + 1
		if g < 1 {
			g = 1
		}
		if ms < 0 || g < ms {
			ms = g
		}
	}
	return ms
}

// acceptReady drains this shard's own listener — the reuseport accept
// path, running ON the event loop, so every error is absorbed without
// ever blocking: exhaustion gates the listener (poller removal + timed
// re-add), it never sleeps.
func (w *shard) acceptReady(now time.Time) {
	s := w.srv
	for {
		fd, done, err := reactor.Accept(w.lane, w.lfd)
		if err != nil {
			if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
				w.stats.acceptEMFILE.add(1)
				s.recoverFDExhaustion(w.lane, w.lfd, &w.reserve, w.stats, w.obs)
				w.gateAccept(now)
				return
			}
			if errors.Is(err, syscall.ENOBUFS) || errors.Is(err, syscall.ENOMEM) {
				w.gateAccept(now)
				return
			}
			// Listener broken: drop it. The shard keeps serving its
			// existing connections; its siblings keep accepting.
			if !w.acceptGated {
				w.poller.Remove(w.lfd)
			}
			reactor.CloseFD(w.lane, w.lfd)
			w.lfd = -1
			w.acceptGated = false
			return
		}
		if done {
			return
		}
		if fd < 0 {
			continue // transient (ECONNABORTED): the peer gave up first
		}
		w.gateBackoff = 0
		w.stats.accepted.add(1)
		if ac := s.cfg.Admission; ac != nil && !ac.Admit() {
			w.stats.shed.add(1)
			if v := w.obs; v != nil {
				v.Record(0, obs.Shed, 0)
			}
			shedConn(w.lane, fd, ac.RetryAfterSeconds())
			continue
		}
		if !s.tryAcquireConn() {
			w.stats.shed.add(1)
			if v := w.obs; v != nil {
				v.Record(0, obs.Shed, 0)
			}
			shedConn(w.lane, fd, shedRetryAfterSec)
			continue
		}
		w.adopt(fd, now)
	}
}

// gateAccept pauses this shard's accepting after a resource-exhausted
// accept: the listener leaves the interest set (level-triggered, it
// would wake the loop hot otherwise) and reArmAccept restores it when
// the exponential backoff expires. Unlike the acceptor thread's gate
// this never blocks — the loop keeps serving its connections.
func (w *shard) gateAccept(now time.Time) {
	b := w.gateBackoff
	if b < acceptBackoffMin {
		b = acceptBackoffMin
	} else if b *= 2; b > acceptBackoffMax {
		b = acceptBackoffMax
	}
	w.gateBackoff = b
	w.stats.acceptBackoffs.add(1)
	if !w.acceptGated {
		w.acceptGated = true
		w.poller.Remove(w.lfd)
	}
	w.gateUntil = now.Add(b)
}

// reArmAccept restores a gated listener to the interest set once the
// backoff has expired.
func (w *shard) reArmAccept(now time.Time) {
	if !w.acceptGated || now.Before(w.gateUntil) {
		return
	}
	w.acceptGated = false
	if w.lfd >= 0 && !w.draining {
		if err := w.poller.Add(w.lfd, true, false); err != nil {
			reactor.CloseFD(w.lane, w.lfd)
			w.lfd = -1
		}
	}
}

// adopt registers a freshly accepted (or ring-delivered) connection
// with this shard: conn state, poller interest, observability birth
// events, and its first timer-wheel deadline. at is the accept stamp;
// for ring deliveries the gap to now is the fan-out ride the
// queue-wait phase accounts for.
func (w *shard) adopt(fd int, at time.Time) {
	now := time.Now()
	c := &conn{fd: fd, lastActive: now, headerStart: now, acceptedAt: at}
	if err := w.poller.Add(fd, true, false); err != nil {
		reactor.CloseFD(w.lane, fd)
		w.srv.connsOpen.add(-1)
		return
	}
	w.conns[fd] = c
	if v := w.obs; v != nil {
		c.obsID = v.NextConnID()
		v.Record(c.obsID, obs.Accept, 0)
		v.Record(c.obsID, obs.QueueWait, now.Sub(at))
	}
	w.scheduleTimeout(c, now)
}

// assertInterest checks the reactor's connection table against the
// poller's interest-set shadow — only under -tags invariants, where the
// shadow is real. Every registered connection must be in the kernel's
// interest set, and the set must hold exactly the connections plus the
// wakeup pipe (plus this shard's listener when it is armed); drift
// either way means events for a connection the shard no longer owns,
// or a connection that can never wake again.
func (w *shard) assertInterest() {
	for fd := range w.conns {
		invariant.Assertf(w.poller.HasInterest(fd),
			"core: conn fd %d in table but missing from epoll interest set", fd)
	}
	expected := len(w.conns) + 1
	if w.lfd >= 0 && !w.acceptGated {
		expected++
	}
	invariant.Assertf(w.poller.InterestCount() == expected,
		"core: epoll interest set has %d fds, want %d",
		w.poller.InterestCount(), expected)
}

// beginDrain flips the shard into drain mode: the listener closes,
// idle connections close immediately; connections with queued output
// stop reading (their read interest is dropped) and close once their
// responses flush.
func (w *shard) beginDrain() {
	w.draining = true
	if w.lfd >= 0 {
		if !w.acceptGated {
			w.poller.Remove(w.lfd)
		}
		reactor.CloseFD(w.lane, w.lfd)
		w.lfd = -1
		w.acceptGated = false
	}
	for _, c := range w.conns {
		if len(c.out) == 0 {
			w.closeConn(c)
			continue
		}
		c.closing = true
		c.writeArm = true
		_ = w.poller.Modify(c.fd, false, true)
	}
}

func (w *shard) shutdown() {
	for _, c := range w.conns {
		reactor.CloseFD(w.lane, c.fd)
		w.srv.connsOpen.add(-1)
		if v := w.obs; v != nil && c.obsID != 0 {
			v.Record(c.obsID, obs.Close, 0)
		}
		releaseOut(c)
	}
	w.conns = nil
	if w.lfd >= 0 {
		if !w.acceptGated {
			w.poller.Remove(w.lfd)
		}
		reactor.CloseFD(w.lane, w.lfd)
		w.lfd = -1
	}
	if w.reserve >= 0 {
		reactor.CloseFD(w.lane, w.reserve)
		w.reserve = -1
	}
	// Connections handed over but never registered still hold a
	// connsOpen slot; release them too.
	if w.ring != nil {
		for {
			p, ok := w.ring.pop()
			if !ok {
				break
			}
			reactor.CloseFD(w.lane, p.fd)
			w.srv.connsOpen.add(-1)
		}
	}
	w.poller.Close()
}

// drainInbox adopts every fd the acceptor has pushed onto the SPSC
// ring (fan-out mode only; reuseport shards accept for themselves).
func (w *shard) drainInbox() {
	if w.ring == nil {
		return
	}
	for {
		p, ok := w.ring.pop()
		if !ok {
			return
		}
		if w.draining {
			// Raced in just as the drain began: shed it.
			reactor.CloseFD(w.lane, p.fd)
			w.srv.connsOpen.add(-1)
			continue
		}
		w.adopt(p.fd, p.at)
	}
}

// readable drains the socket and serves every parsed request.
func (w *shard) readable(c *conn) {
	v := w.obs
	c.lastActive = time.Now()
	for {
		n, eof, again, err := reactor.Read(w.lane, c.fd, w.buf)
		if err != nil || eof {
			w.closeConn(c)
			return
		}
		if again {
			break
		}
		if v != nil && n > 0 && c.reqStart.IsZero() {
			c.reqStart = time.Now()
			v.Record(c.obsID, obs.HeaderRead, 0)
		}
		w.reqs = w.reqs[:0]
		reqs, perr := c.parser.Feed(w.reqs, w.buf[:n])
		w.reqs = reqs
		panicked := false
		for _, req := range reqs {
			if v != nil {
				now := time.Now()
				v.Record(c.obsID, obs.Parse, now.Sub(c.reqStart))
				// Pipelined followers in the same batch parse from here,
				// so their parse phase reflects only their own cost.
				c.reqStart = now
				c.handlerStart = now
			}
			if !w.serveSafe(c, req) {
				panicked = true
				if v != nil {
					v.Record(c.obsID, obs.Panic, 0)
				}
				break
			}
			if v != nil {
				// Recorded after serve bumps Stats.Replies, so at any
				// instant the handler-phase count never exceeds replies —
				// the internal-consistency contract the admin scrapers
				// assert under load.
				now := time.Now()
				v.Record(c.obsID, obs.Handler, now.Sub(c.handlerStart))
				c.serveDone = now
			}
		}
		if panicked {
			// The isolation path queued a 500 and marked the connection
			// closing; skip further reads and let flush deliver it.
			break
		}
		if perr != nil {
			w.stats.badRequest.add(1)
			c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 400, "text/plain", 0, false)})
			c.closing = true
			break
		}
	}
	// Header clock: a buffered partial request keeps (or starts) the
	// clock; a clean boundary stops it — between requests only the idle
	// policy applies.
	if c.parser.Pending() {
		if c.headerStart.IsZero() {
			c.headerStart = c.lastActive
		}
	} else {
		c.headerStart = time.Time{}
		c.reqStart = time.Time{}
	}
	w.flush(c)
	if c2, still := w.conns[c.fd]; still && c2 == c {
		w.scheduleTimeout(c, time.Now())
	}
}

// serveSafe serves one request with panic isolation: a panicking handler
// costs its own connection a best-effort 500 and a close — never the
// process, and never the shard's other connections. It reports whether
// the connection may continue serving pipelined requests.
func (w *shard) serveSafe(c *conn, req *httpwire.Request) (ok bool) {
	mark := len(c.out)
	defer func() {
		if r := recover(); r != nil {
			// Drop whatever the handler partially queued — releasing any
			// docroot references it pinned — and answer with a 500 that
			// closes the connection.
			for i := mark; i < len(c.out); i++ {
				if c.out[i].ent != nil {
					c.out[i].ent.Release()
					c.out[i].ent = nil
				}
			}
			c.out = append(c.out[:mark], outSeg{buf: httpwire.AppendResponseHeader(nil, 500, "text/plain", 0, false)})
			c.closing = true
			c.replies++
			w.stats.replies.add(1)
			w.stats.handlerPanics.add(1)
			ok = false
		}
	}()
	w.serve(c, req)
	return true
}

// applyFault executes an injected fault on the reactor thread — exactly
// where handler work runs in this architecture, so a Delay or Spin
// stalls the owning loop (the architecture's honest cost model for
// handler work) and a Wedge is precisely what the watchdog exists to
// flag.
func (w *shard) applyFault(f Fault) {
	if f.Delay > 0 {
		time.Sleep(f.Delay) //nio:ok loopblock -- injected fault: stalling the loop is the point
	}
	if f.Spin > 0 {
		// Busy-burn, not sleep: the shard-scaling sweep needs handler
		// cost that consumes a real core, so N shards on N cores can
		// honestly multiply throughput where sleeping handlers would
		// overlap arbitrarily on one.
		for end := time.Now().Add(f.Spin); time.Now().Before(end); {
		}
	}
	if f.Wedge != nil {
		select { //nio:ok loopblock -- injected wedge: the watchdog test drives this
		case <-f.Wedge:
		case <-w.srv.stopping:
		}
	}
	if f.Panic {
		panic("core: injected handler panic")
	}
}

// serve appends one response to the connection's output queue.
func (w *shard) serve(c *conn, req *httpwire.Request) {
	if invariant.Enabled {
		invariant.Assertf(!c.closed, "core: response queued on closed conn fd %d", c.fd)
	}
	if ff := w.srv.cfg.HandlerFault; ff != nil {
		w.applyFault(ff(req.Path))
	}
	switch {
	case req.Method != "GET" && req.Method != "HEAD":
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 501, "text/plain", 0, req.KeepAlive)})
	case w.srv.cfg.Docroot != nil:
		w.serveDocroot(c, req)
	default:
		w.serveStore(c, req)
	}
	c.replies++
	w.stats.replies.add(1)
	if !req.KeepAlive {
		c.closing = true
	}
}

// serveStore resolves the path against the store and queues 200/404.
func (w *shard) serveStore(c *conn, req *httpwire.Request) {
	body, ctype, ok := w.srv.cfg.Store.Get(req.Path)
	if !ok {
		w.stats.notFound.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 404, "text/plain", 0, req.KeepAlive)})
	} else {
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 200, ctype, int64(len(body)), req.KeepAlive)})
		if req.Method == "GET" && len(body) > 0 {
			c.out = append(c.out, outSeg{buf: body})
		}
	}
}

// serveDocroot resolves the path against the disk-backed docroot and
// queues 200/304/404. Bodies cached in memory are queued as byte
// segments (buffered copy); everything else becomes a sendfile segment
// holding a reference to the entry's shared fd.
func (w *shard) serveDocroot(c *conn, req *httpwire.Request) {
	ent, err := w.srv.cfg.Docroot.Get(req.Path)
	if err != nil {
		w.stats.notFound.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeader(nil, 404, "text/plain", 0, req.KeepAlive)})
		return
	}
	if httpwire.NotModified(req, ent.ETag, ent.ModTime) {
		w.stats.notModified.add(1)
		c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeaderValidators(
			nil, 304, ent.ContentType, 0, req.KeepAlive, ent.ETag, ent.LastModified)})
		ent.Release()
		return
	}
	c.out = append(c.out, outSeg{buf: httpwire.AppendResponseHeaderValidators(
		nil, 200, ent.ContentType, ent.Size, req.KeepAlive, ent.ETag, ent.LastModified)})
	if req.Method != "GET" || ent.Size == 0 {
		ent.Release()
		return
	}
	if body := ent.Body(); body != nil {
		// Buffered path: the immutable body slice outlives the entry, so
		// the reference can be dropped immediately.
		c.out = append(c.out, outSeg{buf: body})
		ent.Release()
		return
	}
	// Zero-copy path: the segment owns the reference until fully sent.
	c.out = append(c.out, outSeg{ent: ent, off: 0, end: ent.Size})
}

// sendfileChunk bounds one sendfile call so a single huge file cannot
// monopolize the reactor thread: after each chunk the loop re-checks
// for EAGAIN and other connections get their turn on the next wait.
const sendfileChunk = 512 << 10

// flush writes queued output until the socket would block, then toggles
// write interest accordingly — the NIO write-readiness pattern. Byte
// segments go through write(2) (resume point c.outOff); file segments
// go through sendfile(2), whose kernel-advanced offset is its own
// resume point, so a response interrupted mid-file continues exactly
// where the socket buffer filled.
//
//nio:hot
func (w *shard) flush(c *conn) {
	if invariant.Enabled {
		invariant.Assertf(!c.closed, "core: flush on closed conn fd %d", c.fd)
	}
	v := w.obs
	for len(c.out) > 0 {
		seg := &c.out[0]
		if seg.ent != nil && !seg.fallback {
			max := sendfileChunk
			if rem := seg.end - seg.off; int64(max) > rem {
				max = int(rem)
			}
			n, again, err := reactor.Sendfile(w.lane, c.fd, seg.ent.FD(), &seg.off, max)
			if err != nil {
				if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
					// The peer is gone; nothing to deliver to.
					w.stats.writeResets.add(1)
					w.closeConn(c)
					return
				}
				// Anything else (EINVAL/EIO: the fs or the kernel refusing
				// the fast path) downgrades this segment to buffered
				// delivery from the same resume offset — a failing
				// sendfile(2) never advances *off, so not one response
				// byte is skipped or repeated.
				w.stats.sendfileFallbacks.add(1)
				seg.fallback = true
				continue
			}
			w.stats.bytesOut.add(int64(n))
			w.stats.sendfileBytes.add(int64(n))
			if v != nil && n > 0 && !c.firstByte {
				c.firstByte = true
				v.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
			}
			if seg.off >= seg.end {
				seg.ent.Release()
				c.out[0] = outSeg{}
				c.out = c.out[1:]
				continue
			}
			if again || n == 0 {
				w.armWrite(c)
				return
			}
			continue // partial progress without EAGAIN: keep pushing
		}
		if seg.ent != nil {
			// Buffered fallback for a failed sendfile segment: read the
			// next chunk at the resume offset and push it through the
			// ordinary non-blocking write path. A partial write just
			// advances off; the next pass re-reads from there, so
			// idempotence is free.
			if !w.flushFallback(c, seg, v) {
				return
			}
			continue
		}
		head := seg.buf[c.outOff:]
		n, again, err := reactor.Write(w.lane, c.fd, head)
		if err != nil {
			if errors.Is(err, syscall.ENOBUFS) {
				// Transient kernel buffer exhaustion is a stall, not a
				// failure: keep the queue, re-arm write interest, retry
				// when the loop next signals writability.
				w.stats.writeStalls.add(1)
				w.armWrite(c)
				return
			}
			if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
				w.stats.writeResets.add(1)
			}
			w.closeConn(c)
			return
		}
		w.stats.bytesOut.add(int64(n))
		if v != nil && n > 0 && !c.firstByte {
			c.firstByte = true
			v.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
		}
		if n == len(head) {
			c.out[0] = outSeg{}
			c.out = c.out[1:]
			c.outOff = 0
			continue
		}
		c.outOff += n
		if again || n < len(head) {
			w.armWrite(c)
			return
		}
	}
	// Drained.
	if v != nil && !c.serveDone.IsZero() {
		// The write phase closes when the queue drains: for pipelined
		// batches this is one record per batch, clocked from the last
		// serve — the honest cost of pushing the batch out the socket.
		v.Record(c.obsID, obs.WriteComplete, time.Since(c.serveDone))
		c.serveDone = time.Time{}
	}
	w.observeFirst(c)
	if c.closing {
		w.closeConn(c)
		return
	}
	if c.writeArm {
		c.writeArm = false
		_ = w.poller.Modify(c.fd, true, false)
	}
}

// fallbackChunk bounds one buffered-fallback read+write so a degraded
// response cannot monopolize the reactor thread any more than a
// healthy sendfile one can.
const fallbackChunk = 64 << 10

// flushFallback pushes one chunk of a downgraded file segment (see
// outSeg.fallback). It reports whether flush may continue with the
// queue; false means the connection was torn down or the socket
// blocked (write interest armed) and flush must return.
func (w *shard) flushFallback(c *conn, seg *outSeg, v *obs.View) bool {
	if w.fbuf == nil {
		w.fbuf = make([]byte, fallbackChunk)
	}
	chunk := w.fbuf
	if rem := seg.end - seg.off; rem < int64(len(chunk)) {
		chunk = chunk[:rem]
	}
	rn, rerr := seg.ent.ReadAt(chunk, seg.off)
	if rn == 0 {
		// Cannot even read the file any more: the response cannot be
		// completed honestly, so the connection must die rather than
		// deliver a short body that looks complete.
		_ = rerr
		w.closeConn(c)
		return false
	}
	n, again, err := reactor.Write(w.lane, c.fd, chunk[:rn])
	if err != nil {
		if errors.Is(err, syscall.ENOBUFS) {
			w.stats.writeStalls.add(1)
			w.armWrite(c)
			return false
		}
		if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
			w.stats.writeResets.add(1)
		}
		w.closeConn(c)
		return false
	}
	seg.off += int64(n)
	w.stats.bytesOut.add(int64(n))
	if v != nil && n > 0 && !c.firstByte {
		c.firstByte = true
		v.Record(c.obsID, obs.FirstByte, time.Since(c.acceptedAt))
	}
	if seg.off >= seg.end {
		seg.ent.Release()
		c.out[0] = outSeg{}
		c.out = c.out[1:]
		return true
	}
	if again || n < rn {
		w.armWrite(c)
		return false
	}
	return true
}

// observeFirst feeds the admission controller the connection's
// accept-to-first-response latency, once, when its first response has
// fully left the socket. First-response latency captures the event-loop
// lag an overloaded reactor accrues — the signal the AIMD loop steers by.
func (w *shard) observeFirst(c *conn) {
	if c.observed || c.replies == 0 {
		return
	}
	c.observed = true
	if ac := w.srv.cfg.Admission; ac != nil {
		ac.Observe(time.Since(c.acceptedAt))
	}
}

// armWrite enables EPOLLOUT for a connection whose socket buffer is
// full.
func (w *shard) armWrite(c *conn) {
	if !c.writeArm {
		c.writeArm = true
		_ = w.poller.Modify(c.fd, true, true)
	}
}

// writable continues a blocked flush, then re-arms the idle clock if
// the queue drained (a blocked writer leaves the wheel; see
// connDeadline).
func (w *shard) writable(c *conn) {
	w.flush(c)
	if c2, still := w.conns[c.fd]; still && c2 == c {
		w.scheduleTimeout(c, time.Now())
	}
}

// resetConn tears a connection down with an RST.
func (w *shard) resetConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseWithReset(w.lane, c.fd)
	c.closed = true
	if v := w.obs; v != nil && c.obsID != 0 {
		v.Record(c.obsID, obs.Close, 0)
	}
	w.uncount()
	releaseOut(c)
}

func (w *shard) closeConn(c *conn) {
	if _, ok := w.conns[c.fd]; !ok {
		return
	}
	delete(w.conns, c.fd)
	w.poller.Remove(c.fd)
	reactor.CloseFD(w.lane, c.fd)
	c.closed = true
	if v := w.obs; v != nil && c.obsID != 0 {
		v.Record(c.obsID, obs.Close, 0)
	}
	w.uncount()
	releaseOut(c)
}

// uncount gives a torn-down connection's connsOpen slot back.
func (w *shard) uncount() {
	w.srv.connsOpen.add(-1)
	if invariant.Enabled {
		invariant.Assertf(w.srv.connsOpen.get() >= 0,
			"core: connsOpen went negative (%d)", w.srv.connsOpen.get())
	}
}

// StatsFields renders a Stats snapshot in the admin endpoint's stable
// field order. The order is part of the /stats text contract (see the
// golden-file tests); append new counters at the end.
func StatsFields(st Stats) []obs.Field {
	return []obs.Field{
		{Name: "accepted", Value: st.Accepted},
		{Name: "replies", Value: st.Replies},
		{Name: "bytes_out", Value: st.BytesOut},
		{Name: "not_found", Value: st.NotFound},
		{Name: "bad_request", Value: st.BadRequest},
		{Name: "conns_open", Value: st.ConnsOpen},
		{Name: "idle_closes", Value: st.IdleCloses},
		{Name: "shed", Value: st.Shed},
		{Name: "header_timeouts", Value: st.HeaderTimeouts},
		{Name: "not_modified", Value: st.NotModified},
		{Name: "sendfile_bytes", Value: st.SendfileBytes},
		{Name: "handler_panics", Value: st.HandlerPanics},
		{Name: "accept_emfile", Value: st.AcceptEMFILE},
		{Name: "accept_backoffs", Value: st.AcceptBackoffs},
		{Name: "write_stalls", Value: st.WriteStalls},
		{Name: "write_resets", Value: st.WriteResets},
		{Name: "sendfile_fallbacks", Value: st.SendfileFallbacks},
	}
}

// releaseOut drops the docroot references held by unsent sendfile
// segments when a connection dies mid-response, so shared fds are not
// pinned by dead connections.
func releaseOut(c *conn) {
	for i := range c.out {
		if c.out[i].ent != nil {
			c.out[i].ent.Release()
			c.out[i].ent = nil
		}
	}
	c.out = nil
}
