//go:build linux

package core

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/surge"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func testStore() MapStore {
	return MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 300<<10),
	}
}

func httpGet(t *testing.T, addr, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeBasicGet(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, body := httpGet(t, s.Addr(), "/hello")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if string(body) != "hello world" {
		t.Fatalf("body = %q", body)
	}
	if resp.Header.Get("Server") == "" || resp.Header.Get("Date") == "" {
		t.Fatalf("missing standard headers: %+v", resp.Header)
	}
	st := s.Stats()
	if st.Replies < 1 || st.Accepted < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServe404(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, _ := httpGet(t, s.Addr(), "/missing")
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if s.Stats().NotFound != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestLargeResponse(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, body := httpGet(t, s.Addr(), "/big")
	if resp.StatusCode != 200 || len(body) != 300<<10 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(body))
	}
}

func TestKeepAliveSequentialRequests(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	for i := 0; i < 5; i++ {
		if _, err := fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello world" {
			t.Fatalf("request %d body %q", i, b)
		}
	}
	if acc := s.Stats().Accepted; acc != 1 {
		t.Fatalf("accepted = %d, want 1 (keep-alive reuse)", acc)
	}
}

func TestPipelinedRequests(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Three requests in one write.
	wire := strings.Repeat("GET /hello HTTP/1.1\r\nHost: x\r\n\r\n", 3)
	if _, err := c.Write([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	for i := 0; i < 3; i++ {
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("pipelined response %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello world" {
			t.Fatalf("pipelined response %d body %q", i, b)
		}
	}
}

func TestConnectionCloseHonored(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, err := io.ReadAll(c) // server must close after the response
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "hello world") {
		t.Fatalf("response: %q", data)
	}
}

func TestBadRequestGets400(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "NONSENSE\r\n\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "400 Bad Request") {
		t.Fatalf("response: %q", data)
	}
	if s.Stats().BadRequest != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestUnsupportedMethodGets501(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "DELETE /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "501") {
		t.Fatalf("response: %q", data)
	}
}

func TestHeadOmitsBody(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "HEAD /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, _ := io.ReadAll(c)
	out := string(data)
	if !strings.Contains(out, "Content-Length: 11") {
		t.Fatalf("HEAD missing length: %q", out)
	}
	if strings.Contains(out, "hello world") {
		t.Fatalf("HEAD leaked body: %q", out)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	const clients = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + s.Addr() + "/hello")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if string(b) != "hello world" {
				errs <- fmt.Errorf("bad body %q", b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Stats().Replies; got < clients {
		t.Fatalf("replies = %d, want >= %d", got, clients)
	}
}

func TestMultipleWorkers(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.Workers = 4
	s := startServer(t, cfg)
	for i := 0; i < 12; i++ {
		resp, _ := httpGet(t, s.Addr(), "/hello")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestAbruptClientCloseCleansUp(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	for i := 0; i < 10; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "GET /big HTTP/1.1\r\n\r\n")
		c.(*net.TCPConn).SetLinger(0)
		c.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().ConnsOpen == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("connections leaked: %+v", s.Stats())
}

func TestConfigValidation(t *testing.T) {
	store := testStore()
	bad := []Config{
		{Workers: 0, Backlog: 1, ReadBuf: 4096, Store: store},
		{Workers: 1, Backlog: 0, ReadBuf: 4096, Store: store},
		{Workers: 1, Backlog: 1, ReadBuf: 8, Store: store},
		{Workers: 1, Backlog: 1, ReadBuf: 4096, Store: nil},
		{Workers: 1, Backlog: 1, ReadBuf: 4096, Store: store, Port: -2},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSurgeStoreServesObjects(t *testing.T) {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 50
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	store := NewSurgeStore(set, scfg.MaxObjectBytes, 2)
	s := startServer(t, DefaultConfig(store))
	for _, id := range []int{0, 7, 49} {
		resp, body := httpGet(t, s.Addr(), store.PathFor(id))
		if resp.StatusCode != 200 {
			t.Fatalf("obj %d: status %d", id, resp.StatusCode)
		}
		if int64(len(body)) != set.Object(id).Size {
			t.Fatalf("obj %d: got %d bytes, want %d", id, len(body), set.Object(id).Size)
		}
	}
	if _, _, ok := store.Get("/obj/9999"); ok {
		t.Fatal("out-of-range object served")
	}
	if _, _, ok := store.Get("/obj/abc"); ok {
		t.Fatal("non-numeric object served")
	}
	if _, _, ok := store.Get("/other"); ok {
		t.Fatal("non-obj path served")
	}
	if store.Hits() != 3 {
		t.Fatalf("hits = %d", store.Hits())
	}
}

func TestParseObjPath(t *testing.T) {
	cases := []struct {
		in string
		id int
		ok bool
	}{
		{"/obj/0", 0, true},
		{"/obj/123", 123, true},
		{"/obj/", 0, false},
		{"/obj", 0, false},
		{"/obj/12a", 0, false},
		{"/object/1", 0, false},
		{"/obj/99999999999999999999", 0, false},
	}
	for _, c := range cases {
		id, ok := parseObjPath(c.in)
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("parseObjPath(%q) = %d,%v want %d,%v", c.in, id, ok, c.id, c.ok)
		}
	}
}

func TestStopIsIdempotentAndReleasesPort(t *testing.T) {
	cfg := DefaultConfig(testStore())
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	port := s.Port()
	s.Stop()
	s.Stop()
	// The port must be reusable immediately (SO_REUSEADDR + real close).
	cfg.Port = port
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	s2.Stop()
}

func TestIdleTimeoutDisabledByDefault(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Wait well past any plausible timeout; the connection must survive
	// (the paper's nio server never disconnects idle clients).
	time.Sleep(600 * time.Millisecond)
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	if _, err := http.ReadResponse(r, nil); err != nil {
		t.Fatalf("idle connection died without IdleTimeout: %v", err)
	}
	if s.Stats().IdleCloses != 0 {
		t.Fatalf("idle closes without the knob: %+v", s.Stats())
	}
}

func TestIdleTimeoutAblation(t *testing.T) {
	// The live ablation: give the event-driven server the thread-pool
	// world's recycling policy and the reset behaviour appears — the
	// errors come from the policy, not the architecture.
	cfg := DefaultConfig(testStore())
	cfg.IdleTimeout = 150 * time.Millisecond
	s := startServer(t, cfg)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().IdleCloses == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if s.Stats().IdleCloses == 0 {
		t.Fatal("idle sweeper never fired")
	}
	// The next use of the connection fails (RST or EOF).
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection survived the idle timeout")
	}
	if got := s.Stats().ConnsOpen; got != 0 {
		t.Fatalf("swept connection still accounted: %+v", s.Stats())
	}
}

func TestIdleTimeoutValidation(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.IdleTimeout = -time.Second
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("negative IdleTimeout accepted")
	}
	cfg = DefaultConfig(testStore())
	cfg.HeaderTimeout = -time.Second
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("negative HeaderTimeout accepted")
	}
	cfg = DefaultConfig(testStore())
	cfg.MaxConns = -1
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("negative MaxConns accepted")
	}
}

// Regression: Stop before Start used to panic on the nil acceptor and
// leak the bound listen fd.
func TestStopBeforeStartReleasesListener(t *testing.T) {
	s, err := NewServer(DefaultConfig(testStore()))
	if err != nil {
		t.Fatal(err)
	}
	port := s.Port()
	s.Stop() // must not panic
	s.Stop() // and stay idempotent

	// The fd must actually be closed: rebinding the same port succeeds.
	cfg := DefaultConfig(testStore())
	cfg.Port = port
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("rebind after Stop-before-Start failed (leaked fd?): %v", err)
	}
	s2.Stop()
}

func TestDrainBeforeStart(t *testing.T) {
	s, err := NewServer(DefaultConfig(testStore()))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Drain(100 * time.Millisecond) {
		t.Fatal("drain of a never-started server reported stragglers")
	}
}

func TestHeaderTimeoutResetsSlowHeaders(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.HeaderTimeout = 100 * time.Millisecond
	s := startServer(t, cfg)

	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Dribble a partial request line, then stall mid-header.
	if _, err := c.Write([]byte("GET /hello HT")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().HeaderTimeouts == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := s.Stats()
	if st.HeaderTimeouts == 0 {
		t.Fatalf("header sweeper never fired: %+v", st)
	}
	if st.ConnsOpen != 0 {
		t.Fatalf("timed-out connection still accounted: %+v", st)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived the header timeout")
	}
}

func TestHeaderTimeoutSparesIdleKeepAlive(t *testing.T) {
	// An idle keep-alive connection *between* requests must not be hit:
	// HeaderTimeout is not IdleTimeout.
	cfg := DefaultConfig(testStore())
	cfg.HeaderTimeout = 100 * time.Millisecond
	s := startServer(t, cfg)

	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	time.Sleep(400 * time.Millisecond) // well past HeaderTimeout

	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	if _, err := http.ReadResponse(r, nil); err != nil {
		t.Fatalf("idle keep-alive connection was header-timed out: %v", err)
	}
	if ht := s.Stats().HeaderTimeouts; ht != 0 {
		t.Fatalf("spurious header timeouts: %d", ht)
	}
}

func TestMaxConnsShedsWith503(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.MaxConns = 4
	s := startServer(t, cfg)

	// Fill the admission budget with held-open connections.
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
		fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
		if _, err := http.ReadResponse(bufio.NewReader(c), nil); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}

	// The next connection must be shed with a 503 and a close.
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "503") {
		t.Fatalf("shed connection got %q, want a 503", data)
	}
	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("no shed accounting: %+v", st)
	}
	if st.ConnsOpen > int64(cfg.MaxConns) {
		t.Fatalf("ConnsOpen %d exceeds MaxConns %d", st.ConnsOpen, cfg.MaxConns)
	}

	// Releasing a slot re-admits new connections.
	held[0].Close()
	held = held[1:]
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().ConnsOpen < int64(cfg.MaxConns) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fmt.Fprintf(c2, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err := http.ReadResponse(bufio.NewReader(c2), nil)
	if err != nil {
		t.Fatalf("re-admission failed: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("re-admitted connection got %d", resp.StatusCode)
	}
}

func TestDrainFinishesInFlightAndClosesIdle(t *testing.T) {
	store := testStore()
	store["/huge"] = make([]byte, 8<<20)
	s := startServer(t, DefaultConfig(store))

	// Idle keep-alive connection: must be closed immediately by drain.
	idle, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	fmt.Fprintf(idle, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
	ri := bufio.NewReader(idle)
	resp, err := http.ReadResponse(ri, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// In-flight response: request a huge object and read it slowly so
	// the server still holds queued output when the drain begins.
	slow, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fmt.Fprintf(slow, "GET /huge HTTP/1.1\r\nHost: x\r\n\r\n")
	time.Sleep(50 * time.Millisecond) // let the server queue the response

	type result struct {
		n   int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		var total int64
		buf := make([]byte, 256<<10)
		for {
			slow.SetReadDeadline(time.Now().Add(10 * time.Second))
			n, err := slow.Read(buf)
			total += int64(n)
			if err != nil {
				done <- result{total, err}
				return
			}
			time.Sleep(2 * time.Millisecond) // slow reader
		}
	}()

	if !s.Drain(10 * time.Second) {
		t.Fatal("drain timed out with a live in-flight response")
	}
	res := <-done
	if res.err != io.EOF {
		t.Fatalf("in-flight read ended with %v, want clean EOF", res.err)
	}
	// Full response head + 8 MiB body must have arrived before the close.
	if res.n < 8<<20 {
		t.Fatalf("in-flight response truncated at %d bytes", res.n)
	}
	// The idle connection must have been closed (EOF, no data).
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ri.ReadByte(); err != io.EOF {
		t.Fatalf("idle connection saw %v, want EOF", err)
	}
	if open := s.Stats().ConnsOpen; open != 0 {
		t.Fatalf("connections survived drain: %d", open)
	}
}

func TestDrainRejectsNewConnections(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	if !s.Drain(5 * time.Second) {
		t.Fatal("empty server failed to drain")
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), 500*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}
