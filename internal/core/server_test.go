//go:build linux

package core

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/surge"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func testStore() MapStore {
	return MapStore{
		"/hello": []byte("hello world"),
		"/big":   make([]byte, 300<<10),
	}
}

func httpGet(t *testing.T, addr, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeBasicGet(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, body := httpGet(t, s.Addr(), "/hello")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if string(body) != "hello world" {
		t.Fatalf("body = %q", body)
	}
	if resp.Header.Get("Server") == "" || resp.Header.Get("Date") == "" {
		t.Fatalf("missing standard headers: %+v", resp.Header)
	}
	st := s.Stats()
	if st.Replies < 1 || st.Accepted < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServe404(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, _ := httpGet(t, s.Addr(), "/missing")
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if s.Stats().NotFound != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestLargeResponse(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	resp, body := httpGet(t, s.Addr(), "/big")
	if resp.StatusCode != 200 || len(body) != 300<<10 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(body))
	}
}

func TestKeepAliveSequentialRequests(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	for i := 0; i < 5; i++ {
		if _, err := fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
			t.Fatal(err)
		}
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello world" {
			t.Fatalf("request %d body %q", i, b)
		}
	}
	if acc := s.Stats().Accepted; acc != 1 {
		t.Fatalf("accepted = %d, want 1 (keep-alive reuse)", acc)
	}
}

func TestPipelinedRequests(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Three requests in one write.
	wire := strings.Repeat("GET /hello HTTP/1.1\r\nHost: x\r\n\r\n", 3)
	if _, err := c.Write([]byte(wire)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	for i := 0; i < 3; i++ {
		resp, err := http.ReadResponse(r, nil)
		if err != nil {
			t.Fatalf("pipelined response %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello world" {
			t.Fatalf("pipelined response %d body %q", i, b)
		}
	}
}

func TestConnectionCloseHonored(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, err := io.ReadAll(c) // server must close after the response
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "hello world") {
		t.Fatalf("response: %q", data)
	}
}

func TestBadRequestGets400(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "NONSENSE\r\n\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "400 Bad Request") {
		t.Fatalf("response: %q", data)
	}
	if s.Stats().BadRequest != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestUnsupportedMethodGets501(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "DELETE /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, _ := io.ReadAll(c)
	if !strings.Contains(string(data), "501") {
		t.Fatalf("response: %q", data)
	}
}

func TestHeadOmitsBody(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "HEAD /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
	data, _ := io.ReadAll(c)
	out := string(data)
	if !strings.Contains(out, "Content-Length: 11") {
		t.Fatalf("HEAD missing length: %q", out)
	}
	if strings.Contains(out, "hello world") {
		t.Fatalf("HEAD leaked body: %q", out)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	const clients = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + s.Addr() + "/hello")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if string(b) != "hello world" {
				errs <- fmt.Errorf("bad body %q", b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Stats().Replies; got < clients {
		t.Fatalf("replies = %d, want >= %d", got, clients)
	}
}

func TestMultipleWorkers(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.Workers = 4
	s := startServer(t, cfg)
	for i := 0; i < 12; i++ {
		resp, _ := httpGet(t, s.Addr(), "/hello")
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestAbruptClientCloseCleansUp(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	for i := 0; i < 10; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "GET /big HTTP/1.1\r\n\r\n")
		c.(*net.TCPConn).SetLinger(0)
		c.Close()
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().ConnsOpen == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("connections leaked: %+v", s.Stats())
}

func TestConfigValidation(t *testing.T) {
	store := testStore()
	bad := []Config{
		{Workers: 0, Backlog: 1, ReadBuf: 4096, Store: store},
		{Workers: 1, Backlog: 0, ReadBuf: 4096, Store: store},
		{Workers: 1, Backlog: 1, ReadBuf: 8, Store: store},
		{Workers: 1, Backlog: 1, ReadBuf: 4096, Store: nil},
		{Workers: 1, Backlog: 1, ReadBuf: 4096, Store: store, Port: -2},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSurgeStoreServesObjects(t *testing.T) {
	scfg := surge.DefaultConfig()
	scfg.NumObjects = 50
	set, err := surge.BuildObjectSet(scfg, dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	store := NewSurgeStore(set, scfg.MaxObjectBytes, 2)
	s := startServer(t, DefaultConfig(store))
	for _, id := range []int{0, 7, 49} {
		resp, body := httpGet(t, s.Addr(), store.PathFor(id))
		if resp.StatusCode != 200 {
			t.Fatalf("obj %d: status %d", id, resp.StatusCode)
		}
		if int64(len(body)) != set.Object(id).Size {
			t.Fatalf("obj %d: got %d bytes, want %d", id, len(body), set.Object(id).Size)
		}
	}
	if _, _, ok := store.Get("/obj/9999"); ok {
		t.Fatal("out-of-range object served")
	}
	if _, _, ok := store.Get("/obj/abc"); ok {
		t.Fatal("non-numeric object served")
	}
	if _, _, ok := store.Get("/other"); ok {
		t.Fatal("non-obj path served")
	}
	if store.Hits() != 3 {
		t.Fatalf("hits = %d", store.Hits())
	}
}

func TestParseObjPath(t *testing.T) {
	cases := []struct {
		in string
		id int
		ok bool
	}{
		{"/obj/0", 0, true},
		{"/obj/123", 123, true},
		{"/obj/", 0, false},
		{"/obj", 0, false},
		{"/obj/12a", 0, false},
		{"/object/1", 0, false},
		{"/obj/99999999999999999999", 0, false},
	}
	for _, c := range cases {
		id, ok := parseObjPath(c.in)
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("parseObjPath(%q) = %d,%v want %d,%v", c.in, id, ok, c.id, c.ok)
		}
	}
}

func TestStopIsIdempotentAndReleasesPort(t *testing.T) {
	cfg := DefaultConfig(testStore())
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	port := s.Port()
	s.Stop()
	s.Stop()
	// The port must be reusable immediately (SO_REUSEADDR + real close).
	cfg.Port = port
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("rebind failed: %v", err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	s2.Stop()
}

func TestIdleTimeoutDisabledByDefault(t *testing.T) {
	s := startServer(t, DefaultConfig(testStore()))
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Wait well past any plausible timeout; the connection must survive
	// (the paper's nio server never disconnects idle clients).
	time.Sleep(600 * time.Millisecond)
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	if _, err := http.ReadResponse(r, nil); err != nil {
		t.Fatalf("idle connection died without IdleTimeout: %v", err)
	}
	if s.Stats().IdleCloses != 0 {
		t.Fatalf("idle closes without the knob: %+v", s.Stats())
	}
}

func TestIdleTimeoutAblation(t *testing.T) {
	// The live ablation: give the event-driven server the thread-pool
	// world's recycling policy and the reset behaviour appears — the
	// errors come from the policy, not the architecture.
	cfg := DefaultConfig(testStore())
	cfg.IdleTimeout = 150 * time.Millisecond
	s := startServer(t, cfg)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	r := bufio.NewReader(c)
	resp, err := http.ReadResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().IdleCloses == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if s.Stats().IdleCloses == 0 {
		t.Fatal("idle sweeper never fired")
	}
	// The next use of the connection fails (RST or EOF).
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(c, "GET /hello HTTP/1.1\r\n\r\n")
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection survived the idle timeout")
	}
	if got := s.Stats().ConnsOpen; got != 0 {
		t.Fatalf("swept connection still accounted: %+v", s.Stats())
	}
}

func TestIdleTimeoutValidation(t *testing.T) {
	cfg := DefaultConfig(testStore())
	cfg.IdleTimeout = -time.Second
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("negative IdleTimeout accepted")
	}
}
