//go:build linux

package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/docroot"
	"repro/internal/obs"
)

// docrootServer starts an event-driven server over a fresh docroot
// containing the given files.
func docrootServer(t *testing.T, files map[string][]byte, cfg docroot.Config) *Server {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Dir = dir
	root, err := docroot.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig(nil)
	scfg.Docroot = root
	return startServer(t, scfg)
}

func TestDocrootServeAndConditionalGet(t *testing.T) {
	body := bytes.Repeat([]byte("docroot body "), 1024)
	s := docrootServer(t, map[string][]byte{"a.txt": body},
		docroot.Config{CacheBytes: 1 << 20, MemLimit: 1 << 20})

	resp, got := httpGet(t, s.Addr(), "/a.txt")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body mismatch: %d bytes vs %d", len(got), len(body))
	}
	if resp.Header.Get("Content-Type") != "text/plain" {
		t.Fatalf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	etag := resp.Header.Get("ETag")
	lastMod := resp.Header.Get("Last-Modified")
	if etag == "" || lastMod == "" {
		t.Fatalf("missing validators: ETag=%q Last-Modified=%q", etag, lastMod)
	}

	// Fresh validators → 304 with no body on the raw wire.
	for _, hdr := range []string{
		"If-None-Match: " + etag,
		"If-Modified-Since: " + lastMod,
	} {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "GET /a.txt HTTP/1.1\r\nHost: x\r\n%s\r\nConnection: close\r\n\r\n", hdr)
		raw, err := io.ReadAll(c)
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("HTTP/1.1 304 ")) {
			t.Fatalf("%s: got %q", hdr, raw[:min(len(raw), 40)])
		}
		if !bytes.HasSuffix(raw, []byte("\r\n\r\n")) {
			t.Fatalf("%s: 304 carried a body: %q", hdr, raw)
		}
	}
	if nm := s.Stats().NotModified; nm != 2 {
		t.Fatalf("NotModified = %d, want 2", nm)
	}

	// Stale validator → full 200.
	req, _ := http.NewRequest("GET", "http://"+s.Addr()+"/a.txt", nil)
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || !bytes.Equal(got2, body) {
		t.Fatalf("stale validator: status=%d len=%d", resp2.StatusCode, len(got2))
	}

	// Missing file → 404.
	resp3, _ := httpGet(t, s.Addr(), "/nope.txt")
	if resp3.StatusCode != 404 {
		t.Fatalf("missing file: status = %d", resp3.StatusCode)
	}
}

func TestDocrootSendfileLargeBody(t *testing.T) {
	// MemLimit 0: every body takes the zero-copy path through the
	// reactor's non-blocking sendfile state machine. 4 MiB is far past
	// the socket buffer, forcing partial writes and EPOLLOUT resumes.
	body := make([]byte, 4<<20)
	for i := range body {
		body[i] = byte(i * 2654435761)
	}
	s := docrootServer(t, map[string][]byte{"big.bin": body},
		docroot.Config{CacheBytes: 1 << 20, MemLimit: 0})

	for i := 0; i < 3; i++ {
		resp, got := httpGet(t, s.Addr(), "/big.bin")
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("iteration %d: body mismatch (%d bytes)", i, len(got))
		}
	}
	st := s.Stats()
	if want := int64(3 * len(body)); st.SendfileBytes != want {
		t.Fatalf("SendfileBytes = %d, want %d", st.SendfileBytes, want)
	}
	if st.BytesOut < st.SendfileBytes {
		t.Fatalf("BytesOut %d < SendfileBytes %d", st.BytesOut, st.SendfileBytes)
	}
}

func TestDocrootHeadOmitsBodyKeepsValidators(t *testing.T) {
	s := docrootServer(t, map[string][]byte{"h.txt": []byte("head me")},
		docroot.Config{CacheBytes: 1 << 20, MemLimit: 1 << 20})
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "HEAD /h.txt HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
	raw, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("HTTP/1.1 200 ")) || !bytes.HasSuffix(raw, []byte("\r\n\r\n")) {
		t.Fatalf("HEAD response: %q", raw)
	}
	if !bytes.Contains(raw, []byte("\r\nETag: ")) || !bytes.Contains(raw, []byte("\r\nContent-Length: 7\r\n")) {
		t.Fatalf("HEAD missing validators or length: %q", raw)
	}
}

// BenchmarkDocrootDelivery compares the two delivery paths for a large
// object through the full server: buffered (body cached in memory,
// written with write(2)) vs zero-copy (fd-only cache entry driven by
// non-blocking sendfile(2) from the reactor loop). The traced variants
// repeat each path with the observability plane enabled — comparing
// them against the plain runs is how the plane's "within 5% when
// enabled, free when disabled" budget is checked:
//
//	go test -bench BenchmarkDocrootDelivery -count 10 ./internal/core | benchstat
func BenchmarkDocrootDelivery(b *testing.B) {
	const size = 2 << 20
	body := make([]byte, size)
	for i := range body {
		body[i] = byte(i)
	}
	for _, mode := range []struct {
		name     string
		memLimit int64
		traced   bool
	}{
		{"buffered", size, false}, // body fits the memory cache → write(2) path
		{"sendfile", 0, false},    // fd-only → sendfile(2) path
		{"buffered-traced", size, true},
		{"sendfile-traced", 0, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "obj.bin"), body, 0o644); err != nil {
				b.Fatal(err)
			}
			root, err := docroot.New(docroot.Config{
				Dir: dir, CacheBytes: 8 << 20, MemLimit: mode.memLimit,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig(nil)
			cfg.Docroot = root
			if mode.traced {
				cfg.Obs = obs.NewPlane(1 << 12)
			}
			s, err := NewServer(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Stop)
			c, err := net.Dial("tcp", s.Addr())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			r := bufio.NewReaderSize(c, 64<<10)
			req := []byte("GET /obj.bin HTTP/1.1\r\nHost: x\r\n\r\n")
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Write(req); err != nil {
					b.Fatal(err)
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					b.Fatal(err)
				}
				n, err := io.Copy(io.Discard, resp.Body)
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if n != size {
					b.Fatalf("short body: %d", n)
				}
			}
		})
	}
}
