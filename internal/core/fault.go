//go:build linux

package core

import "time"

// Fault is one injected handler fault. The zero value is no fault.
// Faults are applied inside the request handler — exactly where a real
// bug or a dead dependency would bite — so the self-healing layers
// (panic isolation, the stall watchdog) are exercised against the same
// control flow they protect in production. Both live servers share this
// hook; mtserver reuses the type.
type Fault struct {
	// Delay blocks the handler for this long before serving — a slow
	// backend or CPU-heavy request. On the event-driven server this
	// stalls the owning reactor thread (deliberately: that is the
	// architecture's cost model for handler work); on the thread pool it
	// parks one worker.
	Delay time.Duration
	// Wedge, when non-nil, blocks the handler until the channel is
	// closed or the server stops — a hang, not a slowdown. This is what
	// the heartbeat watchdog exists to flag.
	Wedge <-chan struct{}
	// Panic makes the handler panic. Panic isolation must convert it
	// into a best-effort 500 on that one connection, never a dead
	// process.
	Panic bool
	// Spin busy-burns CPU on the serving thread for this long — a
	// compute-heavy handler, as opposed to Delay's sleeping one. The
	// distinction matters for the shard-scaling sweep: sleeping
	// handlers overlap arbitrarily on one core, so only a spinning
	// handler makes reply rate honestly proportional to real CPUs.
	Spin time.Duration
}

// FaultFunc inspects a request path and returns the fault to inject
// (zero Fault for none). Wired through Config.HandlerFault on both
// servers; nil disables injection entirely.
type FaultFunc func(path string) Fault
