//go:build linux

package core

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// benchServer starts a server with a fixed-size object for the micro
// benchmarks.
func benchServer(b *testing.B, workers int, bodyBytes int) (*Server, net.Conn, *bufio.Reader) {
	b.Helper()
	store := MapStore{"/obj": make([]byte, bodyBytes)}
	cfg := DefaultConfig(store)
	cfg.Workers = workers
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Stop)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return s, c, bufio.NewReaderSize(c, 64<<10)
}

// BenchmarkSequentialRequests measures single-connection request latency
// over keep-alive (syscall + parse + serve + write round trip).
func BenchmarkSequentialRequests(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10, 128 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			_, c, r := benchServer(b, 1, size)
			req := []byte("GET /obj HTTP/1.1\r\nHost: x\r\n\r\n")
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Write(req); err != nil {
					b.Fatal(err)
				}
				resp, err := http.ReadResponse(r, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
			}
		})
	}
}

// BenchmarkPipelinedBatch measures the reactor's pipelining throughput:
// 16 requests written back-to-back, 16 responses drained.
func BenchmarkPipelinedBatch(b *testing.B) {
	const batch = 16
	_, c, r := benchServer(b, 1, 4<<10)
	wire := []byte(strings.Repeat("GET /obj HTTP/1.1\r\nHost: x\r\n\r\n", batch))
	b.SetBytes(batch * 4 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(wire); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < batch; j++ {
			resp, err := http.ReadResponse(r, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	}
}
