//go:build linux

package core

import "time"

// wheelSlots is the timer wheel's slot count. The wheel spans
// wheelSlots*tick of future time; deadlines beyond the horizon are
// parked in the last slot and re-examined when it fires (the lazy
// recompute below makes that cheap and correct).
const wheelSlots = 64

// timerWheel is a per-shard lazy timing wheel replacing the old
// O(conns) idle/header sweeps. Each live connection has at most one
// entry (conn.wheeled); when its slot fires the deadline is recomputed
// from the connection's CURRENT state — activity since scheduling just
// reschedules it, so reads and writes never touch the wheel on the hot
// path. Everything here is loop-owned: one wheel per shard, mutated
// only by that shard's event loop.
//
//nio:loop-owned
type timerWheel struct {
	tick  time.Duration
	slots [wheelSlots][]*conn
	// base is the wall time of the current slot's tick boundary; cur
	// advances one slot per elapsed tick.
	base  time.Time
	cur   int
	count int
}

// newTimerWheel returns a wheel for the configured timeouts, or nil if
// neither timeout knob is set (no wheel, unbounded poller waits). The
// tick is half the tightest timeout, floored at 10ms — the same
// resolution the old sweep-based loop bounded its waits to.
func newTimerWheel(cfg Config, now time.Time) *timerWheel {
	sweep := cfg.IdleTimeout
	if ht := cfg.HeaderTimeout; ht > 0 && (sweep == 0 || ht < sweep) {
		sweep = ht
	}
	if sweep <= 0 {
		return nil
	}
	tick := sweep / 2
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	return &timerWheel{tick: tick, base: now}
}

// schedule files c under the slot covering due. Deadlines past the
// horizon clamp to the farthest slot; expiry recomputes, so an early
// fire only costs a reschedule, never a premature close. The target is
// always at least one slot ahead of cur, so firing the current slot can
// never grow the slice it is iterating.
func (wh *timerWheel) schedule(c *conn, due, now time.Time) {
	ticks := int64(due.Sub(now)/wh.tick) + 1
	if ticks < 1 {
		ticks = 1
	}
	if ticks > wheelSlots-1 {
		ticks = wheelSlots - 1
	}
	slot := (wh.cur + int(ticks)) % wheelSlots
	wh.slots[slot] = append(wh.slots[slot], c)
	c.wheeled = true
	wh.count++
}

// fastForward re-anchors an empty wheel at now so a long-idle shard
// does not step slot-by-slot through the dead time when work returns.
func (wh *timerWheel) fastForward(now time.Time) {
	if d := now.Sub(wh.base); d >= wh.tick {
		k := int64(d / wh.tick)
		wh.base = wh.base.Add(time.Duration(k) * wh.tick)
		wh.cur = (wh.cur + int(k%wheelSlots)) % wheelSlots
	}
}

// scheduleTimeout files c's earliest deadline in the wheel, if it has
// one and is not already filed. Called where a deadline can newly
// arise: at adopt, after a read batch, and when the output queue
// drains (re-arming the idle clock).
func (w *shard) scheduleTimeout(c *conn, now time.Time) {
	wh := w.wheel
	if wh == nil || c.wheeled || c.closed {
		return
	}
	due := w.connDeadline(c)
	if due.IsZero() {
		return
	}
	wh.schedule(c, due, now)
}

// connDeadline returns the connection's earliest pending deadline, or
// zero if no timeout currently applies. The idle clock only runs while
// no output is queued (a blocked writer is not idle — matching the old
// sweepIdle); the header clock only runs while a complete request is
// owed and the server is not draining (drain already stopped reads).
func (w *shard) connDeadline(c *conn) time.Time {
	var due time.Time
	if it := w.srv.cfg.IdleTimeout; it > 0 && len(c.out) == 0 {
		due = c.lastActive.Add(it)
	}
	if ht := w.srv.cfg.HeaderTimeout; ht > 0 && !w.draining && !c.headerStart.IsZero() {
		if hd := c.headerStart.Add(ht); due.IsZero() || hd.Before(due) {
			due = hd
		}
	}
	return due
}

// advanceWheel steps the wheel up to now, firing each slot it passes.
// One call steps at most a full revolution; if the loop was parked
// longer than the wheel's span (only possible when the wheel emptied,
// since a non-empty wheel bounds the poller wait to one tick), the
// remainder collapses into a re-anchor at now.
func (w *shard) advanceWheel(now time.Time) {
	wh := w.wheel
	if wh == nil {
		return
	}
	if wh.count == 0 {
		wh.fastForward(now)
		return
	}
	steps := 0
	for steps < wheelSlots && !wh.base.Add(wh.tick).After(now) {
		wh.base = wh.base.Add(wh.tick)
		wh.cur = (wh.cur + 1) % wheelSlots
		steps++
		w.fireSlot(now)
	}
	if steps == wheelSlots {
		wh.base = now
	}
}

// fireSlot expires or reschedules every connection filed under the
// current slot. Entries are nilled as they are consumed so dead
// connections are not pinned by the recycled backing array.
func (w *shard) fireSlot(now time.Time) {
	wh := w.wheel
	slot := wh.slots[wh.cur]
	wh.slots[wh.cur] = slot[:0]
	for i, c := range slot {
		slot[i] = nil
		c.wheeled = false
		wh.count--
		if c.closed {
			continue
		}
		w.expireConn(c, now)
	}
}

// expireConn applies the timeout policies to one fired connection:
// header timeout first (the slowloris defense — dribbled bytes reset
// lastActive but not headerStart, so a dribbler cannot outrun it),
// then the idle policy, else reschedule at the recomputed deadline.
func (w *shard) expireConn(c *conn, now time.Time) {
	if ht := w.srv.cfg.HeaderTimeout; ht > 0 && !w.draining &&
		!c.headerStart.IsZero() && !c.headerStart.Add(ht).After(now) {
		w.stats.headerTimeouts.add(1)
		w.resetConn(c)
		return
	}
	if it := w.srv.cfg.IdleTimeout; it > 0 && len(c.out) == 0 &&
		!c.lastActive.Add(it).After(now) {
		w.stats.idleCloses.add(1)
		w.resetConn(c)
		return
	}
	w.scheduleTimeout(c, now)
}
