// Package core implements the paper's primary contribution as a live
// system: an event-driven ("nio") HTTP server built on explicit readiness
// selection (internal/reactor) with one acceptor thread and a small fixed
// set of single-threaded reactor workers. Architecture, terminology and
// defaults follow the paper's experimental server: non-blocking reads and
// writes, write-interest toggling, no per-connection threads, and no
// idle-connection timeouts.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/docroot"
	"repro/internal/surge"
)

// Store serves the static content. Implementations must be safe for
// concurrent readers (every worker consults the store).
type Store interface {
	// Get returns the body and content type for a URL path. ok=false
	// produces a 404.
	Get(path string) (body []byte, contentType string, ok bool)
}

// MapStore is a trivial in-memory store for examples and tests.
type MapStore map[string][]byte

// Get implements Store. The content type is inferred from the path's
// extension (octet-stream for extensionless paths), matching what the
// disk-backed docroot would serve for the same name.
func (m MapStore) Get(path string) ([]byte, string, bool) {
	b, ok := m[path]
	return b, docroot.TypeByExt(path), ok
}

// SurgeStore exposes a surge.ObjectSet as URL paths /obj/<id>. All object
// bodies are views into one shared pseudo-random blob, so a 2000-object
// SURGE population costs one allocation of MaxObjectBytes instead of the
// sum of sizes.
type SurgeStore struct {
	set  *surge.ObjectSet
	blob []byte
	hits atomic.Int64
}

// NewSurgeStore builds the store; blob contents are deterministic in
// seed and byte-identical to what docroot.MaterializeSurge writes to
// disk for the same (set, maxObjectBytes, seed), so in-memory and
// disk-backed servers are directly comparable.
func NewSurgeStore(set *surge.ObjectSet, maxObjectBytes int64, seed uint64) *SurgeStore {
	return &SurgeStore{set: set, blob: docroot.SurgeBlob(maxObjectBytes, seed)}
}

// Get implements Store: paths of the form /obj/<id>.
func (s *SurgeStore) Get(path string) ([]byte, string, bool) {
	id, ok := parseObjPath(path)
	if !ok || id < 0 || id >= s.set.Len() {
		return nil, "", false
	}
	s.hits.Add(1)
	size := s.set.Object(id).Size
	if size > int64(len(s.blob)) {
		size = int64(len(s.blob))
	}
	return s.blob[:size], docroot.TypeByExt(path), true
}

// Hits returns the number of successful lookups.
func (s *SurgeStore) Hits() int64 { return s.hits.Load() }

// Len returns the object count.
func (s *SurgeStore) Len() int { return s.set.Len() }

// PathFor returns the canonical URL for object id.
func (s *SurgeStore) PathFor(id int) string { return fmt.Sprintf("/obj/%d", id) }

// parseObjPath extracts <id> from "/obj/<id>" without allocating.
func parseObjPath(path string) (int, bool) {
	const prefix = "/obj/"
	if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return 0, false
	}
	id := 0
	for i := len(prefix); i < len(path); i++ {
		c := path[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
		if id > 1<<30 {
			return 0, false
		}
	}
	return id, true
}
