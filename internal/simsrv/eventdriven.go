package simsrv

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// ---------------------------------------------------------------------
// Event-driven server (the paper's "nio server")
// ---------------------------------------------------------------------

// task is one unit of reactor work: a CPU burst followed by an effect.
type task struct {
	cost   float64
	effect func()
}

// worker is a single reactor thread: it owns a FIFO of tasks and executes
// them one at a time (a thread can only use one CPU).
type worker struct {
	cpu   *simcpu.Pool
	queue []task
	busy  bool
}

func (w *worker) enqueue(cost float64, effect func()) {
	w.queue = append(w.queue, task{cost: cost, effect: effect})
	w.pump()
}

func (w *worker) pump() {
	if w.busy || len(w.queue) == 0 {
		return
	}
	w.busy = true
	t := w.queue[0]
	w.queue[0] = task{}
	w.queue = w.queue[1:]
	w.cpu.Submit(t.cost, func() {
		t.effect()
		w.busy = false
		w.pump()
	})
}

// edConn is the event-driven server's per-connection state.
type edConn struct {
	conn    *simnet.Conn
	worker  *worker
	pending []*Request
	writing bool
	closed  bool
}

// EventDriven is the reactor-based server model.
type EventDriven struct {
	engine   *sim.Engine
	net      *simnet.Network
	cpu      *simcpu.Pool
	costs    Costs
	acceptor *worker
	workers  []*worker
	rr       int
	stats    Stats
}

// NewEventDriven builds the nio-server model with the given number of
// reactor workers (the paper sweeps 1–8). Call Start to begin listening.
func NewEventDriven(engine *sim.Engine, net *simnet.Network, cpu *simcpu.Pool, costs Costs, workers int) *EventDriven {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	if workers <= 0 {
		panic(fmt.Sprintf("simsrv: EventDriven needs at least one worker, got %d", workers))
	}
	s := &EventDriven{
		engine:   engine,
		net:      net,
		cpu:      cpu,
		costs:    costs,
		acceptor: &worker{cpu: cpu},
	}
	for i := 0; i < workers; i++ {
		s.workers = append(s.workers, &worker{cpu: cpu})
	}
	return s
}

// Start registers with the network and sizes the thread population.
func (s *EventDriven) Start() {
	s.cpu.SetThreadCount(len(s.workers) + 1)
	s.net.OnSyn = func(bool) {
		// Kernel-side SYN handling is not attributable to a server
		// thread; submit it directly to the pool.
		s.cpu.Submit(s.costs.SynProcess, func() {})
	}
	s.net.Listen(s.onPending)
}

// Stats returns a copy of the server counters.
func (s *EventDriven) Stats() Stats { return s.stats }

// onPending: the acceptor thread wakes from select and accepts every
// queued connection, paying the accept cost per connection.
func (s *EventDriven) onPending() {
	if b := s.net.Backlog(); b > s.stats.QueuedAtPeak {
		s.stats.QueuedAtPeak = b
	}
	s.acceptor.enqueue(s.costs.SelectWakeup+s.costs.Accept, func() {
		conn := s.net.Accept()
		if conn == nil {
			return
		}
		s.stats.Accepted++
		ec := &edConn{conn: conn, worker: s.workers[s.rr%len(s.workers)]}
		s.rr++
		s.net.AttachServer(conn,
			func(_ int64, meta any) { s.onRequest(ec, meta) },
			func() {
				ec.closed = true
				s.stats.PeerCloses++
			})
		// More connections may still be queued.
		if s.net.Backlog() > 0 {
			s.onPending()
		}
	})
}

// onRequest queues a parsed request; responses on one connection are
// serialized (HTTP/1.1 ordering) but interleave freely across connections.
func (s *EventDriven) onRequest(ec *edConn, meta any) {
	req, ok := meta.(*Request)
	if !ok {
		return
	}
	ec.pending = append(ec.pending, req)
	if !ec.writing {
		s.startResponse(ec)
	}
}

func (s *EventDriven) startResponse(ec *edConn) {
	if len(ec.pending) == 0 || ec.closed {
		ec.writing = false
		return
	}
	ec.writing = true
	req := ec.pending[0]
	ec.pending[0] = nil
	ec.pending = ec.pending[1:]
	ec.worker.enqueue(s.costs.SelectWakeup+s.costs.Parse, func() {
		s.enqueueWrite(ec, req, req.ResponseBytes)
	})
}

// enqueueWrite schedules one non-blocking write of up to ChunkBytes as a
// reactor task: the worker pays the syscall + copy cost, issues the send,
// and moves on. When the socket buffer drains, the continuation is queued
// *behind* whatever else the worker has to do — this is the fair
// interleaving the paper credits for nio's lack of client timeouts.
func (s *EventDriven) enqueueWrite(ec *edConn, req *Request, remaining int64) {
	if ec.closed {
		s.startResponse(ec)
		return
	}
	chunk := remaining
	if chunk > s.costs.ChunkBytes {
		chunk = s.costs.ChunkBytes
	}
	left := remaining - chunk
	var meta any
	if left == 0 {
		meta = &ResponseDone{Tag: req.Tag}
	}
	ec.worker.enqueue(s.costs.SelectWakeup+s.costs.WriteSyscall+s.costs.PerByte*float64(chunk), func() {
		s.net.ServerSendCB(ec.conn, chunk, meta, func() {
			if left > 0 {
				s.enqueueWrite(ec, req, left)
				return
			}
			s.stats.Replies++
			s.stats.BytesSent += req.ResponseBytes
			s.startResponse(ec)
		})
	})
}
