package simsrv

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// Prefork models the "multiprocess strategy" the paper mentions choosing
// *against* when configuring Apache ("configured using a multithread
// schema instead of a multiprocess strategy") — Apache 1.3 / prefork MPM
// behaviour. It behaves like Threaded (one connection bound to one
// execution context, blocking I/O, keep-alive recycling) with the two
// properties that distinguish processes from threads:
//
//   - the pool resizes dynamically (StartServers / MinSpare / MaxSpare /
//     MaxClients), paying a fork cost per new process; under a load spike
//     clients wait for the spawner, which ramps one-two-four per second
//     like Apache's;
//   - each process is several times heavier than a thread (no shared
//     heap, duplicated caches), so the CPU model's memory penalty bites
//     at much lower population counts.
type Prefork struct {
	*Threaded
	cfg    PreforkConfig
	ticker *sim.Ticker
	// spawnBatch is the current per-tick spawn count (exponential ramp,
	// reset once the spare target is met — Apache's behaviour).
	spawnBatch int
	forks      int64
	reaps      int64
}

// PreforkConfig mirrors Apache 1.3's process-management directives.
type PreforkConfig struct {
	StartServers int
	MinSpare     int
	MaxSpare     int
	MaxClients   int
	// ForkCost is the CPU time to fork and initialize one process.
	ForkCost float64
	// ProcessMemWeight is how many thread-equivalents of memory one
	// process costs (≈4 for a typical 2004 Apache child vs a thread).
	ProcessMemWeight int
	// KeepAlive is the idle disconnect timeout, as in Threaded.
	KeepAlive float64
	// MaintenanceSec is the spawner period (Apache: 1 s).
	MaintenanceSec float64
}

// DefaultPreforkConfig returns Apache-1.3-ish defaults scaled to the
// paper's load range.
func DefaultPreforkConfig() PreforkConfig {
	return PreforkConfig{
		StartServers:     32,
		MinSpare:         16,
		MaxSpare:         64,
		MaxClients:       1024,
		ForkCost:         2e-3,
		ProcessMemWeight: 4,
		KeepAlive:        15,
		MaintenanceSec:   1,
	}
}

// Validate reports configuration errors.
func (c PreforkConfig) Validate() error {
	switch {
	case c.StartServers <= 0:
		return fmt.Errorf("simsrv: prefork StartServers must be positive, got %d", c.StartServers)
	case c.MinSpare <= 0 || c.MaxSpare < c.MinSpare:
		return fmt.Errorf("simsrv: prefork spare bounds invalid (%d, %d)", c.MinSpare, c.MaxSpare)
	case c.MaxClients < c.StartServers:
		return fmt.Errorf("simsrv: prefork MaxClients %d below StartServers %d", c.MaxClients, c.StartServers)
	case c.ForkCost < 0:
		return fmt.Errorf("simsrv: negative ForkCost %v", c.ForkCost)
	case c.ProcessMemWeight <= 0:
		return fmt.Errorf("simsrv: ProcessMemWeight must be positive, got %d", c.ProcessMemWeight)
	case c.KeepAlive <= 0:
		return fmt.Errorf("simsrv: prefork KeepAlive must be positive, got %v", c.KeepAlive)
	case c.MaintenanceSec <= 0:
		return fmt.Errorf("simsrv: MaintenanceSec must be positive, got %v", c.MaintenanceSec)
	}
	return nil
}

// NewPrefork builds the multiprocess server model.
func NewPrefork(engine *sim.Engine, net *simnet.Network, cpu *simcpu.Pool, costs Costs, cfg PreforkConfig) *Prefork {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	base := NewThreaded(engine, net, cpu, costs, cfg.StartServers, cfg.KeepAlive)
	base.memWeight = cfg.ProcessMemWeight
	return &Prefork{Threaded: base, cfg: cfg, spawnBatch: 1}
}

// Start begins listening and arms the process-management ticker.
func (p *Prefork) Start() {
	p.Threaded.Start()
	p.ticker = sim.NewTicker(p.engine, p.cfg.MaintenanceSec, p.maintain)
}

// Stop cancels the spawner (tests drain the engine afterwards).
func (p *Prefork) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// Forks and Reaps expose the process-churn counters.
func (p *Prefork) Forks() int64 { return p.forks }
func (p *Prefork) Reaps() int64 { return p.reaps }

// maintain is Apache's once-per-second process management: spawn toward
// MinSpare with an exponential ramp, reap beyond MaxSpare.
func (p *Prefork) maintain() {
	idle := len(p.idle)
	switch {
	case idle < p.cfg.MinSpare && p.PoolSize() < p.cfg.MaxClients:
		n := p.spawnBatch
		if room := p.cfg.MaxClients - p.PoolSize(); n > room {
			n = room
		}
		for i := 0; i < n; i++ {
			p.fork()
		}
		if p.spawnBatch < 32 {
			p.spawnBatch *= 2
		}
	case idle > p.cfg.MaxSpare:
		p.spawnBatch = 1
		if p.reapIdleThread() {
			p.reaps++
		}
	default:
		p.spawnBatch = 1
	}
}

// fork pays the fork cost, then adds the process and pulls queued work.
func (p *Prefork) fork() {
	p.forks++
	p.cpu.Submit(p.cfg.ForkCost, func() {
		p.addThread()
		p.dispatch()
	})
}
