package simsrv

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// This file implements the paper's §6 conjecture as a simulated server:
// "Dividing the server in pipelined stages, adding one or more threads to
// each stage and assigning a processor affinity to each thread can
// convert a multiprocessor ... in a real high-scalable request processing
// pipeline." The Staged server splits request handling into three stages
// (accept → parse → write), each with a private worker pool. With
// Affinity enabled, each stage's workers run on dedicated processors and
// enjoy a locality discount on their CPU costs (hot i-cache and data
// structures, as in Harizopoulos & Ailamaki's affinity-scheduling work
// the paper cites); without it, all stages share the machine's
// processors.

// StageSpec sizes one pipeline stage.
type StageSpec struct {
	// Workers is the stage's thread count.
	Workers int
	// Processors is the number of CPUs dedicated to the stage when the
	// pipeline runs with affinity. Ignored otherwise.
	Processors int
}

// StagedSpec configures the staged server.
type StagedSpec struct {
	Accept StageSpec
	Parse  StageSpec
	Write  StageSpec
	// Affinity pins each stage to its own processors and applies
	// LocalityDiscount to stage costs.
	Affinity bool
	// LocalityDiscount multiplies CPU costs when Affinity is on
	// (e.g. 0.85 = 15% cheaper thanks to cache locality). Must be in
	// (0, 1].
	LocalityDiscount float64
	// SharedProcessors is the machine size when Affinity is off.
	SharedProcessors int
}

// DefaultStagedSpec returns a 4-CPU pipeline: 1 accept + 1 parse + 2
// write processors, mirroring where the per-request CPU time goes.
func DefaultStagedSpec(affinity bool) StagedSpec {
	return StagedSpec{
		Accept:           StageSpec{Workers: 1, Processors: 1},
		Parse:            StageSpec{Workers: 1, Processors: 1},
		Write:            StageSpec{Workers: 2, Processors: 2},
		Affinity:         affinity,
		LocalityDiscount: 0.85,
		SharedProcessors: 4,
	}
}

// Validate reports spec errors.
func (s StagedSpec) Validate() error {
	for _, st := range []struct {
		name string
		sp   StageSpec
	}{{"Accept", s.Accept}, {"Parse", s.Parse}, {"Write", s.Write}} {
		if st.sp.Workers <= 0 {
			return fmt.Errorf("simsrv: stage %s needs at least one worker", st.name)
		}
		if s.Affinity && st.sp.Processors <= 0 {
			return fmt.Errorf("simsrv: stage %s needs processors under affinity", st.name)
		}
	}
	if s.LocalityDiscount <= 0 || s.LocalityDiscount > 1 {
		return fmt.Errorf("simsrv: LocalityDiscount %v outside (0,1]", s.LocalityDiscount)
	}
	if !s.Affinity && s.SharedProcessors <= 0 {
		return fmt.Errorf("simsrv: SharedProcessors must be positive without affinity")
	}
	return nil
}

// stagePool is one stage's execution resource: a set of workers drawing
// from one CPU pool.
type stagePool struct {
	workers []*worker
	rr      int
}

func newStagePool(cpu *simcpu.Pool, n int) *stagePool {
	sp := &stagePool{}
	for i := 0; i < n; i++ {
		sp.workers = append(sp.workers, &worker{cpu: cpu})
	}
	return sp
}

// pick returns a worker round-robin (per-connection stickiness is applied
// by the caller where ordering matters).
func (sp *stagePool) pick() *worker {
	w := sp.workers[sp.rr%len(sp.workers)]
	sp.rr++
	return w
}

// Staged is the §6 pipelined server model.
type Staged struct {
	engine *sim.Engine
	net    *simnet.Network
	costs  Costs
	spec   StagedSpec

	acceptStage *stagePool
	parseStage  *stagePool
	writeStage  *stagePool

	stats Stats
}

// NewStaged builds the staged server. CPU pools are created internally:
// one per stage under affinity, one shared pool otherwise. cpuParams
// supplies the overhead model (its Processors field is overridden per
// the spec).
func NewStaged(engine *sim.Engine, net *simnet.Network, cpuParams simcpu.Params, costs Costs, spec StagedSpec) *Staged {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	s := &Staged{engine: engine, net: net, costs: costs, spec: spec}
	if spec.Affinity {
		mk := func(procs, workers int) *stagePool {
			p := cpuParams
			p.Processors = procs
			return newStagePool(simcpu.NewPool(engine, p), workers)
		}
		s.acceptStage = mk(spec.Accept.Processors, spec.Accept.Workers)
		s.parseStage = mk(spec.Parse.Processors, spec.Parse.Workers)
		s.writeStage = mk(spec.Write.Processors, spec.Write.Workers)
	} else {
		p := cpuParams
		p.Processors = spec.SharedProcessors
		shared := simcpu.NewPool(engine, p)
		s.acceptStage = newStagePool(shared, spec.Accept.Workers)
		s.parseStage = newStagePool(shared, spec.Parse.Workers)
		s.writeStage = newStagePool(shared, spec.Write.Workers)
	}
	return s
}

// cost applies the locality discount when affinity is enabled.
func (s *Staged) cost(c float64) float64 {
	if s.spec.Affinity {
		return c * s.spec.LocalityDiscount
	}
	return c
}

// Start registers with the network.
func (s *Staged) Start() {
	s.net.OnSyn = func(bool) {
		s.acceptStage.workers[0].cpu.Submit(s.costs.SynProcess, func() {})
	}
	s.net.Listen(s.onPending)
}

// Stats returns a copy of the server counters.
func (s *Staged) Stats() Stats { return s.stats }

// stagedConn is the per-connection state; requests are serialized per
// connection across stages to preserve HTTP ordering.
type stagedConn struct {
	conn    *simnet.Conn
	parseW  *worker // sticky: one parse worker per connection
	writeW  *worker // sticky: one write worker per connection
	pending []*Request
	writing bool
	closed  bool
}

func (s *Staged) onPending() {
	if b := s.net.Backlog(); b > s.stats.QueuedAtPeak {
		s.stats.QueuedAtPeak = b
	}
	aw := s.acceptStage.pick()
	aw.enqueue(s.cost(s.costs.SelectWakeup+s.costs.Accept), func() {
		conn := s.net.Accept()
		if conn == nil {
			return
		}
		s.stats.Accepted++
		sc := &stagedConn{
			conn:   conn,
			parseW: s.parseStage.pick(),
			writeW: s.writeStage.pick(),
		}
		s.net.AttachServer(conn,
			func(_ int64, meta any) { s.onRequest(sc, meta) },
			func() {
				sc.closed = true
				s.stats.PeerCloses++
			})
		if s.net.Backlog() > 0 {
			s.onPending()
		}
	})
}

// onRequest runs the parse stage, then hands off to the write stage.
func (s *Staged) onRequest(sc *stagedConn, meta any) {
	req, ok := meta.(*Request)
	if !ok {
		return
	}
	sc.parseW.enqueue(s.cost(s.costs.SelectWakeup+s.costs.Parse), func() {
		sc.pending = append(sc.pending, req)
		if !sc.writing {
			s.startWrite(sc)
		}
	})
}

func (s *Staged) startWrite(sc *stagedConn) {
	if len(sc.pending) == 0 || sc.closed {
		sc.writing = false
		return
	}
	sc.writing = true
	req := sc.pending[0]
	sc.pending[0] = nil
	sc.pending = sc.pending[1:]
	s.writeChunk(sc, req, req.ResponseBytes)
}

func (s *Staged) writeChunk(sc *stagedConn, req *Request, remaining int64) {
	if sc.closed {
		s.startWrite(sc)
		return
	}
	chunk := remaining
	if chunk > s.costs.ChunkBytes {
		chunk = s.costs.ChunkBytes
	}
	left := remaining - chunk
	var meta any
	if left == 0 {
		meta = &ResponseDone{Tag: req.Tag}
	}
	sc.writeW.enqueue(s.cost(s.costs.SelectWakeup+s.costs.WriteSyscall+s.costs.PerByte*float64(chunk)), func() {
		s.net.ServerSendCB(sc.conn, chunk, meta, func() {
			if left > 0 {
				s.writeChunk(sc, req, left)
				return
			}
			s.stats.Replies++
			s.stats.BytesSent += req.ResponseBytes
			s.startWrite(sc)
		})
	})
}
