package simsrv

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// rig is a complete simulated testbed for one server under test.
type rig struct {
	engine *sim.Engine
	net    *simnet.Network
	cpu    *simcpu.Pool
}

func newRig(t testing.TB, procs int) *rig {
	t.Helper()
	e := sim.NewEngine()
	return &rig{
		engine: e,
		net: simnet.NewNetwork(e, simnet.Params{
			BandwidthBps: 117e6,
			Latency:      100e-6,
			Backlog:      128,
			SynRetries:   3,
		}),
		cpu: simcpu.NewPool(e, simcpu.Params{Processors: procs}),
	}
}

// client is a minimal scripted client for server tests: it connects,
// sends requests, and records what comes back.
type client struct {
	rig     *rig
	conn    *simnet.Conn
	replies []any
	bytes   int64
	resets  int
}

func (c *client) connect(t testing.TB, then func()) {
	t.Helper()
	c.conn = &simnet.Conn{
		OnConnected: func(float64) { then() },
		OnClientRecv: func(b int64, meta any) {
			c.bytes += b
			if meta != nil {
				c.replies = append(c.replies, meta)
			}
		},
		OnReset: func() { c.resets++ },
	}
	c.rig.net.Connect(c.conn)
}

func (c *client) get(size int64, tag any) {
	c.rig.net.ClientSend(c.conn, 200, &Request{ResponseBytes: size, Tag: tag})
}

func TestEventDrivenServesOneRequest(t *testing.T) {
	r := newRig(t, 1)
	srv := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 1)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(10000, "r1") })
	r.engine.Run()
	if len(c.replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(c.replies))
	}
	if done := c.replies[0].(*ResponseDone); done.Tag != "r1" {
		t.Fatalf("wrong tag %v", done.Tag)
	}
	if c.bytes != 10000 {
		t.Fatalf("client received %d bytes, want 10000", c.bytes)
	}
	st := srv.Stats()
	if st.Accepted != 1 || st.Replies != 1 || st.BytesSent != 10000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEventDrivenMultiChunkResponse(t *testing.T) {
	r := newRig(t, 1)
	costs := DefaultCosts()
	costs.ChunkBytes = 1024
	srv := NewEventDriven(r.engine, r.net, r.cpu, costs, 1)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(10000, "big") })
	r.engine.Run()
	if c.bytes != 10000 {
		t.Fatalf("received %d bytes, want 10000 across ~10 chunks", c.bytes)
	}
	if len(c.replies) != 1 {
		t.Fatalf("final-chunk meta delivered %d times", len(c.replies))
	}
}

func TestEventDrivenPipelinedOrdering(t *testing.T) {
	r := newRig(t, 1)
	srv := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 1)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() {
		c.get(5000, "a")
		c.get(5000, "b")
		c.get(5000, "c")
	})
	r.engine.Run()
	if len(c.replies) != 3 {
		t.Fatalf("replies = %d, want 3", len(c.replies))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := c.replies[i].(*ResponseDone).Tag; got != want {
			t.Fatalf("reply %d = %v, want %v (HTTP/1.1 ordering)", i, got, want)
		}
	}
}

func TestEventDrivenManyClientsOneWorker(t *testing.T) {
	r := newRig(t, 1)
	srv := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 1)
	srv.Start()
	const n = 50
	clients := make([]*client, n)
	for i := range clients {
		c := &client{rig: r}
		clients[i] = c
		c.connect(t, func() { c.get(20000, i) })
	}
	r.engine.Run()
	for i, c := range clients {
		if len(c.replies) != 1 {
			t.Fatalf("client %d got %d replies", i, len(c.replies))
		}
	}
	if st := srv.Stats(); st.Replies != n {
		t.Fatalf("server replies = %d, want %d", st.Replies, n)
	}
}

func TestEventDrivenNeverClosesIdleConnections(t *testing.T) {
	r := newRig(t, 1)
	srv := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 1)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(1000, "first") })
	r.engine.Run()
	// Wait far beyond any keep-alive horizon, then reuse the connection.
	r.engine.Schedule(300, func() { c.get(1000, "second") })
	r.engine.Run()
	if c.resets != 0 {
		t.Fatalf("resets = %d; the nio server must never reset idle clients", c.resets)
	}
	if len(c.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(c.replies))
	}
}

func TestEventDrivenWorkersShareLoad(t *testing.T) {
	// With 4 CPUs and 4 workers, 4 equal responses should complete in
	// roughly a quarter of the serial CPU time. We check the parallel
	// case is faster than the 1-worker case.
	elapsed := func(workers int) sim.Time {
		r := newRig(t, 4)
		costs := DefaultCosts()
		costs.PerByte = 1e-6 // make CPU dominate so parallelism shows
		srv := NewEventDriven(r.engine, r.net, r.cpu, costs, workers)
		srv.Start()
		for i := 0; i < 8; i++ {
			c := &client{rig: r}
			c.connect(t, func() { c.get(60000, i) })
		}
		r.engine.Run()
		return r.engine.Now()
	}
	t1, t4 := elapsed(1), elapsed(4)
	if t4 >= t1 {
		t.Fatalf("4 workers (%v) not faster than 1 worker (%v) on 4 CPUs", t4, t1)
	}
}

func TestThreadedServesOneRequest(t *testing.T) {
	r := newRig(t, 1)
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 4, 15)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(10000, "r1") })
	r.engine.RunUntil(10)
	if len(c.replies) != 1 || c.bytes != 10000 {
		t.Fatalf("replies=%d bytes=%d", len(c.replies), c.bytes)
	}
	if st := srv.Stats(); st.Accepted != 1 || st.Replies != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestThreadedKeepAliveTimeoutResetsIdleClient(t *testing.T) {
	r := newRig(t, 1)
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 4, 15)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(1000, "first") })
	r.engine.RunUntil(5)
	if len(c.replies) != 1 {
		t.Fatalf("first reply missing")
	}
	// Think longer than the 15 s keep-alive, then write again: reset.
	r.engine.Schedule(20, func() { c.get(1000, "second") })
	r.engine.RunUntil(60)
	if c.resets != 1 {
		t.Fatalf("resets = %d, want 1 (keep-alive fired at 15s)", c.resets)
	}
	if len(c.replies) != 1 {
		t.Fatalf("got a reply after reset")
	}
	if st := srv.Stats(); st.IdleCloses != 1 {
		t.Fatalf("IdleCloses = %d, want 1", st.IdleCloses)
	}
}

func TestThreadedThreadRecycledAfterIdleClose(t *testing.T) {
	r := newRig(t, 1)
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 1, 15)
	srv.Start()
	c1 := &client{rig: r}
	c1.connect(t, func() { c1.get(1000, "a") })
	r.engine.RunUntil(5)
	// The single thread is bound to c1. A second client must wait for
	// the keep-alive to free it.
	c2 := &client{rig: r}
	r.engine.Schedule(1, func() {
		c2.connect(t, func() { c2.get(1000, "b") })
	})
	r.engine.RunUntil(120)
	if len(c2.replies) != 1 {
		t.Fatalf("second client never served after thread recycle")
	}
	if srv.IdleThreads() != 0 {
		// c2 is now bound and idle-timer armed; after its keep-alive the
		// thread frees again.
	}
	r.engine.RunUntil(200)
	if srv.IdleThreads() != 1 {
		t.Fatalf("thread not recycled: idle=%d", srv.IdleThreads())
	}
}

func TestThreadedClientCloseFreesThread(t *testing.T) {
	r := newRig(t, 1)
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 1, 15)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(1000, "a") })
	r.engine.RunUntil(2)
	r.net.ClientClose(c.conn)
	r.engine.RunUntil(5)
	if srv.IdleThreads() != 1 {
		t.Fatalf("thread not freed on client FIN: idle=%d", srv.IdleThreads())
	}
	if st := srv.Stats(); st.PeerCloses != 1 {
		t.Fatalf("PeerCloses = %d", st.PeerCloses)
	}
}

func TestThreadedPipelinedRequestsServedSequentially(t *testing.T) {
	r := newRig(t, 1)
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 2, 15)
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() {
		c.get(5000, "a")
		c.get(5000, "b")
	})
	r.engine.RunUntil(10)
	if len(c.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(c.replies))
	}
	if c.replies[0].(*ResponseDone).Tag != "a" || c.replies[1].(*ResponseDone).Tag != "b" {
		t.Fatal("pipelined replies out of order")
	}
}

func TestThreadedConnectionTimeExplodesWhenPoolExhausted(t *testing.T) {
	r := newRig(t, 1)
	// Small backlog so the overflow shows quickly.
	r.net = simnet.NewNetwork(r.engine, simnet.Params{
		BandwidthBps: 117e6, Latency: 100e-6, Backlog: 2, SynRetries: 5,
	})
	srv := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 2, 15)
	srv.Start()
	var durs []float64
	for i := 0; i < 8; i++ {
		c := &client{rig: r}
		conn := &simnet.Conn{}
		conn.OnConnected = func(d float64) { durs = append(durs, d) }
		conn.OnClientRecv = func(int64, any) {}
		_ = c
		r.net.Connect(conn)
	}
	r.engine.RunUntil(120)
	// 2 threads + 2 backlog slots connect fast; later clients need SYN
	// retransmits (>= 3 s) — figure 4's exponential connect-time blowup.
	fast, slow := 0, 0
	for _, d := range durs {
		if d < 0.1 {
			fast++
		}
		if d >= 3 {
			slow++
		}
	}
	if fast < 2 || slow < 1 {
		t.Fatalf("connect durations %v: want some fast and some >= 3s", durs)
	}
}

func TestEventDrivenConnectionTimeStaysFlat(t *testing.T) {
	r := newRig(t, 1)
	srv := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 1)
	srv.Start()
	var worst float64
	for i := 0; i < 100; i++ {
		conn := &simnet.Conn{OnConnected: func(d float64) {
			if d > worst {
				worst = d
			}
		}}
		r.net.Connect(conn)
	}
	r.engine.RunUntil(30)
	if worst > 0.1 {
		t.Fatalf("worst connect time %v; the acceptor should keep draining", worst)
	}
}

func TestCostsValidate(t *testing.T) {
	good := DefaultCosts()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Parse = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
	bad = good
	bad.ChunkBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero chunk accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	r := newRig(t, 1)
	for _, fn := range []func(){
		func() { NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 0) },
		func() { NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 0, 15) },
		func() { NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 1, 0) },
		func() {
			bad := DefaultCosts()
			bad.Accept = -1
			NewEventDriven(r.engine, r.net, r.cpu, bad, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBothServersDeliverSameBytes(t *testing.T) {
	// Architectural equivalence check: for the same workload both
	// servers must deliver exactly the same payload bytes.
	run := func(build func(r *rig) interface{ Stats() Stats }) Stats {
		r := newRig(t, 1)
		srv := build(r)
		sizes := []int64{100, 5000, 70000, 123, 64 << 10}
		for i, sz := range sizes {
			c := &client{rig: r}
			sz := sz
			delay := float64(i) * 0.01
			r.engine.Schedule(delay, func() {
				c.connect(t, func() { c.get(sz, i) })
			})
		}
		r.engine.RunUntil(100)
		return srv.Stats()
	}
	var edNet, thNet *simnet.Network
	ed := run(func(r *rig) interface{ Stats() Stats } {
		s := NewEventDriven(r.engine, r.net, r.cpu, DefaultCosts(), 2)
		s.Start()
		edNet = r.net
		return s
	})
	th := run(func(r *rig) interface{ Stats() Stats } {
		s := NewThreaded(r.engine, r.net, r.cpu, DefaultCosts(), 8, 15)
		s.Start()
		thNet = r.net
		return s
	})
	if ed.BytesSent != th.BytesSent {
		t.Fatalf("bytes differ: event-driven %d, threaded %d", ed.BytesSent, th.BytesSent)
	}
	if ed.Replies != th.Replies {
		t.Fatalf("replies differ: %d vs %d", ed.Replies, th.Replies)
	}
	if edNet.Resets != 0 {
		t.Fatalf("event-driven produced %d resets", edNet.Resets)
	}
	_ = thNet
}
