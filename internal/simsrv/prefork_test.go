package simsrv

import (
	"testing"

	"repro/internal/simcpu"
)

func preforkRig(t *testing.T, cfg PreforkConfig) (*rig, *Prefork) {
	t.Helper()
	r := newRig(t, 1)
	p := NewPrefork(r.engine, r.net, r.cpu, DefaultCosts(), cfg)
	p.Start()
	return r, p
}

func TestPreforkServesRequests(t *testing.T) {
	cfg := DefaultPreforkConfig()
	cfg.StartServers = 4
	cfg.MinSpare = 2
	cfg.MaxSpare = 8
	cfg.MaxClients = 16
	r, p := preforkRig(t, cfg)
	c := &client{rig: r}
	c.connect(t, func() { c.get(10000, "x") })
	r.engine.RunUntil(5)
	p.Stop()
	if len(c.replies) != 1 || c.bytes != 10000 {
		t.Fatalf("replies=%d bytes=%d", len(c.replies), c.bytes)
	}
}

func TestPreforkGrowsUnderLoad(t *testing.T) {
	cfg := DefaultPreforkConfig()
	cfg.StartServers = 2
	cfg.MinSpare = 2
	cfg.MaxSpare = 50
	cfg.MaxClients = 64
	r, p := preforkRig(t, cfg)
	// 20 concurrent keep-alive clients exceed the 2 starting processes;
	// the spawner must grow the pool.
	for i := 0; i < 20; i++ {
		c := &client{rig: r}
		c.connect(t, func() { c.get(5000, i) })
	}
	r.engine.RunUntil(30)
	p.Stop()
	if p.PoolSize() <= 2 {
		t.Fatalf("pool never grew: %d processes", p.PoolSize())
	}
	if p.Forks() == 0 {
		t.Fatal("no forks recorded")
	}
	if p.PoolSize() > cfg.MaxClients {
		t.Fatalf("pool exceeded MaxClients: %d", p.PoolSize())
	}
}

func TestPreforkReapsIdleProcesses(t *testing.T) {
	cfg := DefaultPreforkConfig()
	cfg.StartServers = 40
	cfg.MinSpare = 2
	cfg.MaxSpare = 4
	cfg.MaxClients = 64
	cfg.KeepAlive = 5
	r, p := preforkRig(t, cfg)
	// No load at all: the spare pool (40 idle) far exceeds MaxSpare (4);
	// maintenance must reap toward the bound.
	r.engine.RunUntil(120)
	p.Stop()
	if p.Reaps() == 0 {
		t.Fatal("no reaps recorded")
	}
	if p.PoolSize() > 10 {
		t.Fatalf("idle pool not shrunk: %d processes", p.PoolSize())
	}
}

func TestPreforkRespectsMaxClients(t *testing.T) {
	cfg := DefaultPreforkConfig()
	cfg.StartServers = 2
	cfg.MinSpare = 4
	cfg.MaxSpare = 8
	cfg.MaxClients = 6
	r, p := preforkRig(t, cfg)
	for i := 0; i < 30; i++ {
		c := &client{rig: r}
		c.connect(t, func() { c.get(2000, i) })
	}
	r.engine.RunUntil(60)
	p.Stop()
	if p.PoolSize() > 6 {
		t.Fatalf("MaxClients violated: %d", p.PoolSize())
	}
}

func TestPreforkMemoryWeightReported(t *testing.T) {
	r := newRig(t, 1)
	cpu := simcpu.NewPool(r.engine, simcpu.Params{Processors: 1, MemThreshold: 100, MemPenaltyPerK: 1})
	cfg := DefaultPreforkConfig()
	cfg.StartServers = 50
	cfg.ProcessMemWeight = 4
	p := NewPrefork(r.engine, r.net, cpu, DefaultCosts(), cfg)
	p.Start()
	p.Stop()
	// 50 processes × weight 4 = 200 thread-equivalents > threshold 100:
	// the overhead factor must exceed 1.
	if f := cpu.OverheadFactor(1); f <= 1 {
		t.Fatalf("memory weight not applied: factor %v", f)
	}
}

func TestPreforkConfigValidate(t *testing.T) {
	good := DefaultPreforkConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*PreforkConfig){
		func(c *PreforkConfig) { c.StartServers = 0 },
		func(c *PreforkConfig) { c.MinSpare = 0 },
		func(c *PreforkConfig) { c.MaxSpare = c.MinSpare - 1 },
		func(c *PreforkConfig) { c.MaxClients = c.StartServers - 1 },
		func(c *PreforkConfig) { c.ForkCost = -1 },
		func(c *PreforkConfig) { c.ProcessMemWeight = 0 },
		func(c *PreforkConfig) { c.KeepAlive = 0 },
		func(c *PreforkConfig) { c.MaintenanceSec = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultPreforkConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPreforkConstructorPanics(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := DefaultPreforkConfig()
	bad.StartServers = 0
	NewPrefork(r.engine, r.net, r.cpu, DefaultCosts(), bad)
}
