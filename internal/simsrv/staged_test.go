package simsrv

import (
	"testing"

	"repro/internal/simcpu"
)

func TestStagedServesRequests(t *testing.T) {
	r := newRig(t, 4)
	srv := NewStaged(r.engine, r.net, simcpu.Params{Processors: 4}, DefaultCosts(), DefaultStagedSpec(false))
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() {
		c.get(10000, "a")
		c.get(5000, "b")
	})
	r.engine.Run()
	if len(c.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(c.replies))
	}
	if c.replies[0].(*ResponseDone).Tag != "a" || c.replies[1].(*ResponseDone).Tag != "b" {
		t.Fatal("staged replies out of order")
	}
	if st := srv.Stats(); st.Replies != 2 || st.BytesSent != 15000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStagedAffinityServesRequests(t *testing.T) {
	r := newRig(t, 4)
	srv := NewStaged(r.engine, r.net, simcpu.Params{Processors: 4}, DefaultCosts(), DefaultStagedSpec(true))
	srv.Start()
	const n = 30
	clients := make([]*client, n)
	for i := range clients {
		c := &client{rig: r}
		clients[i] = c
		c.connect(t, func() { c.get(20000, i) })
	}
	r.engine.Run()
	for i, c := range clients {
		if len(c.replies) != 1 {
			t.Fatalf("client %d got %d replies", i, len(c.replies))
		}
	}
	if r.net.Resets != 0 {
		t.Fatal("staged server produced resets")
	}
}

func TestStagedAffinityFasterUnderLocalityAssumption(t *testing.T) {
	// With the locality discount, the affinity pipeline should finish a
	// CPU-bound batch sooner than the shared-pool pipeline — the §6
	// conjecture under its stated assumption.
	elapsed := func(affinity bool) float64 {
		r := newRig(t, 4)
		costs := DefaultCosts()
		costs.PerByte = 2e-7 // CPU-dominated
		srv := NewStaged(r.engine, r.net, simcpu.Params{Processors: 4}, costs, DefaultStagedSpec(affinity))
		srv.Start()
		for i := 0; i < 40; i++ {
			c := &client{rig: r}
			c.connect(t, func() { c.get(60000, i) })
		}
		r.engine.Run()
		return float64(r.engine.Now())
	}
	shared, affinity := elapsed(false), elapsed(true)
	if affinity >= shared {
		t.Fatalf("affinity pipeline (%v) not faster than shared (%v)", affinity, shared)
	}
}

func TestStagedNeverClosesIdleConnections(t *testing.T) {
	r := newRig(t, 2)
	srv := NewStaged(r.engine, r.net, simcpu.Params{Processors: 2}, DefaultCosts(), DefaultStagedSpec(false))
	srv.Start()
	c := &client{rig: r}
	c.connect(t, func() { c.get(1000, "x") })
	r.engine.Run()
	r.engine.Schedule(500, func() { c.get(1000, "y") })
	r.engine.Run()
	if c.resets != 0 || len(c.replies) != 2 {
		t.Fatalf("resets=%d replies=%d", c.resets, len(c.replies))
	}
}

func TestStagedSpecValidate(t *testing.T) {
	good := DefaultStagedSpec(true)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*StagedSpec){
		func(s *StagedSpec) { s.Accept.Workers = 0 },
		func(s *StagedSpec) { s.Parse.Workers = 0 },
		func(s *StagedSpec) { s.Write.Workers = 0 },
		func(s *StagedSpec) { s.Affinity = true; s.Parse.Processors = 0 },
		func(s *StagedSpec) { s.LocalityDiscount = 0 },
		func(s *StagedSpec) { s.LocalityDiscount = 1.5 },
		func(s *StagedSpec) { s.Affinity = false; s.SharedProcessors = 0 },
	}
	for i, mutate := range cases {
		spec := DefaultStagedSpec(true)
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStagedConstructorPanicsOnBadSpec(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := DefaultStagedSpec(false)
	bad.Write.Workers = 0
	NewStaged(r.engine, r.net, simcpu.Params{Processors: 1}, DefaultCosts(), bad)
}
