// Package simsrv contains the two simulated web-server architectures the
// paper compares:
//
//   - EventDriven — the "nio server": one acceptor thread plus a small,
//     fixed set of reactor worker threads. Workers multiplex all
//     connections with readiness selection; writes are non-blocking and
//     proceed one socket-buffer-sized chunk at a time, so a single worker
//     interleaves thousands of in-progress responses. Idle connections
//     are never closed.
//
//   - Threaded — the "httpd2" model of Apache 2's worker MPM: a bounded
//     pool of threads, each bound to one connection at a time, blocking
//     reads and writes, and a keep-alive idle timeout that force-closes
//     inactive connections to recycle threads (the source of the paper's
//     connection-reset errors).
//
// Both run on the same simulated CPUs (simcpu) and network (simnet) and
// serve the same byte counts, so every measured difference is
// architectural.
package simsrv

import "fmt"

// Request is the uplink message meta: the client names the object (by its
// response size — the simulated server has no need for a name) and passes
// a correlation tag echoed on the final response chunk.
type Request struct {
	ResponseBytes int64
	Tag           any
}

// ResponseDone is the meta carried by the final chunk of a response.
type ResponseDone struct {
	Tag any
}

// Costs are the per-operation CPU prices (seconds of CPU time) shared by
// both server models. They abstract the 1.4 GHz Xeon testbed.
type Costs struct {
	// Accept is the cost of accept(2) plus connection setup.
	Accept float64
	// Parse is the cost of reading and parsing one request and locating
	// the file (the paper's servers serve from cache, so no disk).
	Parse float64
	// WriteSyscall is the fixed cost of one write(2).
	WriteSyscall float64
	// PerByte is the copy cost per payload byte.
	PerByte float64
	// SelectWakeup is the event-driven server's cost of one selector
	// dispatch (select/epoll return plus key iteration).
	SelectWakeup float64
	// SynProcess is the kernel cost of handling one SYN (also charged
	// for SYNs that are dropped because the backlog is full).
	SynProcess float64
	// ChunkBytes is the socket send-buffer size: the granularity of
	// blocking writes (Threaded) and of write-readiness rounds
	// (EventDriven).
	ChunkBytes int64
}

// DefaultCosts approximates the paper's 1.4 GHz Xeon: tens of
// microseconds per syscall-ish operation, ~1 ns/byte copy, 64 KiB socket
// buffers.
func DefaultCosts() Costs {
	return Costs{
		Accept:       40e-6,
		Parse:        110e-6,
		WriteSyscall: 25e-6,
		PerByte:      5.5e-9,
		SelectWakeup: 8e-6,
		SynProcess:   8e-6,
		ChunkBytes:   64 << 10,
	}
}

// Validate reports cost errors.
func (c Costs) Validate() error {
	if c.Accept < 0 || c.Parse < 0 || c.WriteSyscall < 0 || c.PerByte < 0 ||
		c.SelectWakeup < 0 || c.SynProcess < 0 {
		return fmt.Errorf("simsrv: costs must be non-negative: %+v", c)
	}
	if c.ChunkBytes <= 0 {
		return fmt.Errorf("simsrv: ChunkBytes must be positive, got %d", c.ChunkBytes)
	}
	return nil
}

// Stats are server-side counters, exposed for tests and reports.
type Stats struct {
	Accepted     int64
	Replies      int64
	BytesSent    int64
	IdleCloses   int64 // keep-alive timeouts fired (Threaded only)
	PeerCloses   int64 // client FINs observed
	QueuedAtPeak int   // max accept-backlog the server ever saw
}
