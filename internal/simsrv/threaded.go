package simsrv

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simcpu"
	"repro/internal/simnet"
)

// ---------------------------------------------------------------------
// Threaded server (the paper's "httpd2" — Apache 2 worker MPM)
// ---------------------------------------------------------------------

// thread is one pool thread of the threaded server.
type thread struct {
	id        int
	conn      *simnet.Conn
	pending   []*Request
	busy      bool // executing a CPU burst or blocked in a write
	idleTimer *sim.Event
}

// Threaded is the Apache-2-worker-style server model.
type Threaded struct {
	engine    *sim.Engine
	net       *simnet.Network
	cpu       *simcpu.Pool
	costs     Costs
	keepAlive float64
	threads   []*thread
	idle      []*thread
	stats     Stats

	// memWeight scales each execution context's memory footprint when
	// reporting the population to the CPU model: 1 for threads (worker
	// MPM), >1 for full processes (prefork MPM, which cannot share
	// heaps and caches the way threads do).
	memWeight int
}

// NewThreaded builds the httpd2 model with a pool of `threads` threads
// and the given keep-alive idle timeout (the paper configures 15 s).
func NewThreaded(engine *sim.Engine, net *simnet.Network, cpu *simcpu.Pool, costs Costs, threads int, keepAlive float64) *Threaded {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	if threads <= 0 {
		panic(fmt.Sprintf("simsrv: Threaded needs at least one thread, got %d", threads))
	}
	if keepAlive <= 0 {
		panic(fmt.Sprintf("simsrv: keep-alive timeout must be positive, got %v", keepAlive))
	}
	s := &Threaded{
		engine:    engine,
		net:       net,
		cpu:       cpu,
		costs:     costs,
		keepAlive: keepAlive,
		memWeight: 1,
	}
	for i := 0; i < threads; i++ {
		s.addThread()
	}
	return s
}

// addThread grows the pool by one execution context and refreshes the
// memory-pressure accounting.
func (s *Threaded) addThread() *thread {
	th := &thread{id: len(s.threads)}
	s.threads = append(s.threads, th)
	s.idle = append(s.idle, th)
	s.cpu.SetThreadCount(len(s.threads) * s.memWeight)
	return th
}

// reapIdleThread removes one idle context (prefork MaxSpare reaping). It
// reports whether a context was reaped.
func (s *Threaded) reapIdleThread() bool {
	if len(s.idle) == 0 {
		return false
	}
	th := s.idle[len(s.idle)-1]
	s.idle = s.idle[:len(s.idle)-1]
	for i, t := range s.threads {
		if t == th {
			s.threads = append(s.threads[:i], s.threads[i+1:]...)
			break
		}
	}
	s.cpu.SetThreadCount(len(s.threads) * s.memWeight)
	return true
}

// PoolSize returns the current number of execution contexts.
func (s *Threaded) PoolSize() int { return len(s.threads) }

// Start registers with the network and sizes the thread population —
// which, for thousands of threads, is what triggers the CPU pool's
// memory-pressure penalty.
func (s *Threaded) Start() {
	s.cpu.SetThreadCount(len(s.threads) * s.memWeight)
	s.net.OnSyn = func(bool) {
		s.cpu.Submit(s.costs.SynProcess, func() {})
	}
	s.net.Listen(s.dispatch)
}

// Stats returns a copy of the server counters.
func (s *Threaded) Stats() Stats { return s.stats }

// IdleThreads returns how many pool threads are unbound.
func (s *Threaded) IdleThreads() int { return len(s.idle) }

// dispatch hands queued connections to idle threads.
func (s *Threaded) dispatch() {
	if b := s.net.Backlog(); b > s.stats.QueuedAtPeak {
		s.stats.QueuedAtPeak = b
	}
	for len(s.idle) > 0 && s.net.Backlog() > 0 {
		conn := s.net.Accept()
		if conn == nil {
			return
		}
		th := s.idle[len(s.idle)-1]
		s.idle = s.idle[:len(s.idle)-1]
		s.bind(th, conn)
	}
}

// bind attaches a connection to a thread for its whole keep-alive
// lifetime — the defining property of the multithreaded architecture.
func (s *Threaded) bind(th *thread, conn *simnet.Conn) {
	th.conn = conn
	th.busy = true
	s.cpu.Submit(s.costs.Accept, func() {
		s.stats.Accepted++
		th.busy = false
		if th.conn == nil {
			// Released while accepting (client vanished): recycle.
			s.idle = append(s.idle, th)
			s.dispatch()
			return
		}
		s.armIdleTimer(th)
		s.net.AttachServer(conn,
			func(_ int64, meta any) {
				req, ok := meta.(*Request)
				if !ok {
					return
				}
				th.pending = append(th.pending, req)
				s.serveNext(th)
			},
			func() {
				s.stats.PeerCloses++
				s.release(th)
			})
	})
}

func (s *Threaded) armIdleTimer(th *thread) {
	s.disarmIdleTimer(th)
	th.idleTimer = s.engine.Schedule(s.keepAlive, func() {
		th.idleTimer = nil
		// Keep-alive expired: close the connection to recycle the
		// thread. The client will see a reset if it writes again.
		s.stats.IdleCloses++
		s.net.ServerClose(th.conn)
		s.release(th)
	})
}

func (s *Threaded) disarmIdleTimer(th *thread) {
	if th.idleTimer != nil {
		s.engine.Cancel(th.idleTimer)
		th.idleTimer = nil
	}
}

// release returns a thread to the pool and pulls new work.
func (s *Threaded) release(th *thread) {
	if th.conn == nil {
		return
	}
	s.disarmIdleTimer(th)
	th.conn.OnServerRecv = nil
	th.conn.OnClientClosed = nil
	th.conn = nil
	th.pending = nil
	if th.busy {
		// The thread is mid-burst or mid-write; it re-enters the pool
		// when the current operation unwinds (serveNext/writeChunk see
		// conn == nil).
		return
	}
	s.idle = append(s.idle, th)
	s.dispatch()
}

// serveNext starts the next pending request if the thread is free.
func (s *Threaded) serveNext(th *thread) {
	if th.busy || th.conn == nil || len(th.pending) == 0 {
		return
	}
	req := th.pending[0]
	th.pending[0] = nil
	th.pending = th.pending[1:]
	th.busy = true
	s.disarmIdleTimer(th)
	s.cpu.Submit(s.costs.Parse, func() {
		s.writeChunk(th, req, req.ResponseBytes)
	})
}

// writeChunk performs one blocking write: CPU burst, then the thread
// sleeps until the socket buffer drains, then the next chunk — the whole
// response is sent before the thread does anything else.
func (s *Threaded) writeChunk(th *thread, req *Request, remaining int64) {
	if th.conn == nil {
		// Released mid-response (client closed). Recycle now.
		th.busy = false
		s.idle = append(s.idle, th)
		s.dispatch()
		return
	}
	chunk := remaining
	if chunk > s.costs.ChunkBytes {
		chunk = s.costs.ChunkBytes
	}
	left := remaining - chunk
	var meta any
	if left == 0 {
		meta = &ResponseDone{Tag: req.Tag}
	}
	s.cpu.Submit(s.costs.WriteSyscall+s.costs.PerByte*float64(chunk), func() {
		conn := th.conn
		if conn == nil {
			th.busy = false
			s.idle = append(s.idle, th)
			s.dispatch()
			return
		}
		s.net.ServerSendCB(conn, chunk, meta, func() {
			if left > 0 {
				s.writeChunk(th, req, left)
				return
			}
			s.stats.Replies++
			s.stats.BytesSent += req.ResponseBytes
			th.busy = false
			if th.conn == nil {
				s.idle = append(s.idle, th)
				s.dispatch()
				return
			}
			if len(th.pending) > 0 {
				s.serveNext(th)
				return
			}
			s.armIdleTimer(th)
		})
	})
}
