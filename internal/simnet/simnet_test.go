package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newNet(t testing.TB, p Params) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	return e, NewNetwork(e, p)
}

func TestLinkSingleTransferTime(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0.01) // 1000 B/s, 10ms latency
	var at sim.Time = -1
	l.Send(500, func() { at = e.Now() })
	e.Run()
	want := 500.0/1000 + 0.01
	if math.Abs(float64(at)-want) > 1e-9 {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if l.BytesCarried() != 500 {
		t.Fatalf("carried = %d", l.BytesCarried())
	}
}

func TestLinkFairSharing(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0)
	var a, b sim.Time = -1, -1
	l.Send(500, func() { a = e.Now() })
	l.Send(500, func() { b = e.Now() })
	e.Run()
	// Two equal transfers sharing 1000 B/s finish together at t=1.
	if math.Abs(float64(a)-1) > 1e-6 || math.Abs(float64(b)-1) > 1e-6 {
		t.Fatalf("finish times %v %v, want 1 1", a, b)
	}
}

func TestLinkShortTransferPreemptsShare(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0)
	var short, long sim.Time = -1, -1
	l.Send(1500, func() { long = e.Now() })
	e.Schedule(0.5, func() {
		l.Send(250, func() { short = e.Now() })
	})
	e.Run()
	// Long alone 0.5s (500B done). Then share 500/s each; short needs
	// 0.5s → done at t=1. Long has 750B at t=1, finishes at 1.75.
	if math.Abs(float64(short)-1.0) > 1e-6 {
		t.Errorf("short done at %v, want 1.0", short)
	}
	if math.Abs(float64(long)-1.75) > 1e-6 {
		t.Errorf("long done at %v, want 1.75", long)
	}
}

func TestLinkZeroByteIsLatencyOnly(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0.02)
	var at sim.Time = -1
	l.Send(0, func() { at = e.Now() })
	e.Run()
	if math.Abs(float64(at)-0.02) > 1e-9 {
		t.Fatalf("zero-byte delivered at %v, want 0.02", at)
	}
}

func TestLinkUtilization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, 1000, 0)
	l.Send(500, func() {})
	e.Run()
	// 500 bytes in 0.5s on a 1000 B/s link → utilization 1.0 over [0,0.5].
	if u := l.Utilization(); math.Abs(u-1.0) > 1e-6 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestLinkPanicsOnBadArgs(t *testing.T) {
	e := sim.NewEngine()
	for _, fn := range []func(){
		func() { NewLink(e, 0, 0) },
		func() { NewLink(e, 100, -1) },
		func() { NewLink(e, 100, 0).Send(-1, func() {}) },
		func() { NewLink(e, 100, 0).Send(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestConnectHandshake(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 4, SynRetries: 3})
	var dur float64 = -1
	c := &Conn{OnConnected: func(d float64) { dur = d }}
	n.Connect(c)
	e.Run()
	// SYN (1 latency) + SYN-ACK (1 latency) = 2ms.
	if math.Abs(dur-0.002) > 1e-9 {
		t.Fatalf("connect duration = %v, want 0.002", dur)
	}
	if c.State() != StateEstablished {
		t.Fatalf("state = %v", c.State())
	}
	if n.Backlog() != 1 {
		t.Fatalf("backlog = %d, want 1", n.Backlog())
	}
	if got := n.Accept(); got != c {
		t.Fatal("Accept returned wrong conn")
	}
	if n.Accept() != nil {
		t.Fatal("Accept on empty backlog should return nil")
	}
}

func TestBacklogOverflowForcesSynRetransmit(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 1, SynRetries: 3})
	var first, second float64 = -1, -1
	c1 := &Conn{OnConnected: func(d float64) { first = d }}
	c2 := &Conn{OnConnected: func(d float64) { second = d }}
	n.Connect(c1)
	n.Connect(c2) // backlog full; SYN dropped, retried after 3s
	// Server drains the backlog at t=1s, freeing a slot for the retry.
	e.Schedule(1, func() { n.Accept() })
	e.Run()
	if first > 0.01 {
		t.Fatalf("first connect took %v, want fast", first)
	}
	if second < 3.0 {
		t.Fatalf("second connect took %v, want >= 3s (one SYN backoff)", second)
	}
	if n.SynDrops != 1 {
		t.Fatalf("SynDrops = %d, want 1", n.SynDrops)
	}
}

func TestConnectGivesUpAfterRetries(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 1, SynRetries: 1})
	ok1 := &Conn{OnConnected: func(float64) {}}
	n.Connect(ok1) // occupies the only backlog slot
	connected := false
	c := &Conn{OnConnected: func(float64) { connected = true }}
	n.Connect(c)
	e.Run()
	if connected {
		t.Fatal("connection should have failed")
	}
	if c.State() != StateFailed {
		t.Fatalf("state = %v, want failed", c.State())
	}
}

func TestAbortConnect(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 1, SynRetries: 5})
	blocker := &Conn{OnConnected: func(float64) {}}
	n.Connect(blocker)
	connected := false
	c := &Conn{OnConnected: func(float64) { connected = true }}
	n.Connect(c)
	e.Schedule(1, func() { n.AbortConnect(c) })
	e.Run()
	if connected {
		t.Fatal("aborted connection still connected")
	}
	if c.State() != StateFailed {
		t.Fatalf("state = %v, want failed", c.State())
	}
}

func establish(t *testing.T, e *sim.Engine, n *Network) *Conn {
	t.Helper()
	c := &Conn{OnConnected: func(float64) {}}
	n.Connect(c)
	e.Run()
	if got := n.Accept(); got != c {
		t.Fatal("failed to establish")
	}
	return c
}

func TestRequestResponseRoundTrip(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	var gotReq, gotResp any
	c.OnServerRecv = func(b int64, meta any) {
		gotReq = meta
		n.ServerSend(c, 1000, "response")
	}
	c.OnClientRecv = func(b int64, meta any) { gotResp = meta }
	n.ClientSend(c, 200, "request")
	e.Run()
	if gotReq != "request" || gotResp != "response" {
		t.Fatalf("round trip failed: req=%v resp=%v", gotReq, gotResp)
	}
	if n.Up.BytesCarried() != 200 || n.Down.BytesCarried() != 1000 {
		t.Fatalf("carried up=%d down=%d", n.Up.BytesCarried(), n.Down.BytesCarried())
	}
}

func TestServerCloseCausesResetOnNextWrite(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	reset := false
	c.OnReset = func() { reset = true }
	n.ServerClose(c)
	n.ClientSend(c, 100, nil)
	e.Run()
	if !reset {
		t.Fatal("expected reset after writing to server-closed conn")
	}
	if n.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", n.Resets)
	}
}

func TestServerCloseWhileRequestInFlight(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1000, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	reset, served := false, false
	c.OnReset = func() { reset = true }
	c.OnServerRecv = func(int64, any) { served = true }
	n.ClientSend(c, 1000, nil) // takes ~1s on the wire
	e.Schedule(0.5, func() { n.ServerClose(c) })
	e.Run()
	if served {
		t.Fatal("request served after server close")
	}
	if !reset {
		t.Fatal("expected reset for in-flight request")
	}
}

func TestClientCloseSilencesDelivery(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	got := false
	c.OnClientRecv = func(int64, any) { got = true }
	n.ServerSend(c, 100, nil)
	n.ClientClose(c)
	e.Run()
	if got {
		t.Fatal("delivery to a closed client")
	}
}

func TestSendOnServerClosedConnDoesNotReachServer(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	served := false
	c.OnServerRecv = func(int64, any) { served = true }
	c.OnReset = func() {}
	n.ServerClose(c)
	n.ClientSend(c, 100, nil)
	e.Run()
	if served {
		t.Fatal("server received data after closing")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{BandwidthBps: 0, Latency: 0, Backlog: 1},
		{BandwidthBps: 1, Latency: -1, Backlog: 1},
		{BandwidthBps: 1, Latency: 0, Backlog: 0},
		{BandwidthBps: 1, Latency: 0, Backlog: 1, SynRetries: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestSynBackoffDoubles(t *testing.T) {
	if synBackoff(0) != 3 || synBackoff(1) != 6 || synBackoff(2) != 12 {
		t.Fatalf("backoffs: %v %v %v", synBackoff(0), synBackoff(1), synBackoff(2))
	}
}

func TestConnStateString(t *testing.T) {
	states := []ConnState{StateConnecting, StateEstablished, StateClosedByClient, StateClosedByServer, StateFailed, ConnState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

// Property: on an uncontended link, delivery time is exactly
// bytes/bandwidth + latency for any size.
func TestQuickLinkTiming(t *testing.T) {
	f := func(size uint32) bool {
		e := sim.NewEngine()
		l := NewLink(e, 1e6, 0.005)
		b := int64(size % 10000000)
		var at sim.Time = -1
		l.Send(b, func() { at = e.Now() })
		e.Run()
		want := float64(b)/1e6 + 0.005
		return math.Abs(float64(at)-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total bytes carried equals the sum of all sends regardless of
// overlap pattern.
func TestQuickBytesConserved(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.NewEngine()
		l := NewLink(e, 1000, 0.001)
		var want int64
		for i, s := range sizes {
			b := int64(s)
			want += b
			delay := float64(i%7) / 100
			e.Schedule(delay, func() { l.Send(b, func() {}) })
		}
		e.Run()
		return l.BytesCarried() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLinkSend(b *testing.B) {
	e := sim.NewEngine()
	l := NewLink(e, 1e9, 0.0001)
	n := 0
	var feed func()
	feed = func() {
		n++
		if n < b.N {
			l.Send(16384, feed)
		}
	}
	l.Send(16384, feed)
	b.ResetTimer()
	e.Run()
}

func TestOnSynHookSeesDrops(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 1, SynRetries: 0})
	var accepted, dropped int
	n.OnSyn = func(d bool) {
		if d {
			dropped++
		} else {
			accepted++
		}
	}
	c1 := &Conn{OnConnected: func(float64) {}}
	c2 := &Conn{OnConnected: func(float64) {}}
	n.Connect(c1)
	n.Connect(c2)
	e.Run()
	if accepted != 1 || dropped != 1 {
		t.Fatalf("accepted=%d dropped=%d, want 1 and 1", accepted, dropped)
	}
}

func TestServerSendCBDrainNotification(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1000, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	var drainedAt sim.Time = -1
	n.ServerSendCB(c, 1000, nil, func() { drainedAt = e.Now() })
	e.Run()
	if drainedAt < 1.0 {
		t.Fatalf("drained at %v, want >= 1s (1000B at 1000B/s)", drainedAt)
	}
}

func TestServerSendCBOnDeadConnStillCompletes(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1000, Latency: 0.0001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	n.ServerClose(c)
	done := false
	n.ServerSendCB(c, 1000, nil, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("write to dead conn never completed (thread would hang)")
	}
}

func TestClientCloseNotifiesServer(t *testing.T) {
	e, n := newNet(t, Params{BandwidthBps: 1e6, Latency: 0.001, Backlog: 4, SynRetries: 1})
	c := establish(t, e, n)
	notified := false
	c.OnClientClosed = func() { notified = true }
	n.ClientClose(c)
	e.Run()
	if !notified {
		t.Fatal("server not notified of client FIN")
	}
}
