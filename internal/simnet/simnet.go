// Package simnet models the testbed network: a duplex Ethernet link of
// finite bandwidth between the client machines and the SUT, TCP-like
// connection establishment with a finite accept backlog and SYN
// retransmission, and reset-on-close semantics.
//
// Fidelity targets (what the paper's figures depend on):
//
//   - finite link bandwidth with fair sharing between concurrent
//     transfers (the 100/200/1000 Mbit/s scenarios of figures 5–6);
//   - connection time = SYN → SYN-ACK latency, which jumps to seconds
//     when the accept backlog overflows and the client must retransmit
//     its SYN after exponential backoff (figure 4);
//   - a server close of an idle kept-alive connection surfaces at the
//     client as a connection reset when it next writes (figure 3b).
//
// Like the CPU model, the link uses virtual-time processor sharing, so
// cost per transfer is O(log n) regardless of how many transfers overlap.
package simnet

import (
	"container/heap"
	"fmt"

	"repro/internal/sim"
)

// Params describes one network path between the load generators and the
// SUT.
type Params struct {
	// BandwidthBps is the usable link bandwidth in bytes per second for
	// each direction (duplex). E.g. 100 Mbit/s ≈ 11.75e6 effective B/s.
	BandwidthBps float64
	// Latency is the one-way propagation + stack delay in seconds.
	Latency float64
	// Backlog is the server's accept queue capacity (SOMAXCONN).
	Backlog int
	// SynRetries is how many times a client retransmits a dropped SYN
	// before giving up (Linux default 5; clients usually abort earlier).
	SynRetries int
}

// DefaultParams returns a gigabit, LAN-latency path with the Linux
// defaults the paper's testbed would have used.
func DefaultParams() Params {
	return Params{
		BandwidthBps: 117e6, // ~1 Gbit/s of goodput
		Latency:      100e-6,
		Backlog:      1024,
		SynRetries:   5,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.BandwidthBps <= 0:
		return fmt.Errorf("simnet: BandwidthBps must be positive, got %v", p.BandwidthBps)
	case p.Latency < 0:
		return fmt.Errorf("simnet: negative latency %v", p.Latency)
	case p.Backlog <= 0:
		return fmt.Errorf("simnet: Backlog must be positive, got %d", p.Backlog)
	case p.SynRetries < 0:
		return fmt.Errorf("simnet: negative SynRetries %d", p.SynRetries)
	}
	return nil
}

// transfer is one in-flight message on a link.
type transfer struct {
	targetV float64
	index   int
	deliver func()
}

type transferHeap []*transfer

func (h transferHeap) Len() int           { return len(h) }
func (h transferHeap) Less(i, j int) bool { return h[i].targetV < h[j].targetV }
func (h transferHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *transferHeap) Push(x any) {
	tr := x.(*transfer)
	tr.index = len(*h)
	*h = append(*h, tr)
}
func (h *transferHeap) Pop() any {
	old := *h
	n := len(old)
	tr := old[n-1]
	old[n-1] = nil
	tr.index = -1
	*h = old[:n-1]
	return tr
}

// Link is one direction of the path: a shared channel of fixed bandwidth.
type Link struct {
	engine     *sim.Engine
	bandwidth  float64
	latency    float64
	active     transferHeap
	v          float64 // virtual bytes granted to every active transfer
	lastUpdate sim.Time
	completion *sim.Event
	carried    int64
}

// NewLink returns a link with the given bandwidth (bytes/s) and one-way
// latency (s).
func NewLink(engine *sim.Engine, bandwidthBps, latency float64) *Link {
	if bandwidthBps <= 0 || latency < 0 {
		panic(fmt.Sprintf("simnet: invalid link (%v Bps, %v s)", bandwidthBps, latency))
	}
	return &Link{engine: engine, bandwidth: bandwidthBps, latency: latency, lastUpdate: engine.Now()}
}

// BytesCarried returns the total payload the link has delivered.
func (l *Link) BytesCarried() int64 { return l.carried }

// Utilization returns mean occupancy over [0, now]: bytes carried divided
// by capacity×time.
func (l *Link) Utilization() float64 {
	now := float64(l.engine.Now())
	if now <= 0 {
		return 0
	}
	return float64(l.carried) / (l.bandwidth * now)
}

// InFlight returns the number of concurrent transfers.
func (l *Link) InFlight() int { return len(l.active) }

func (l *Link) rate() float64 {
	n := len(l.active)
	if n == 0 {
		return 0
	}
	return l.bandwidth / float64(n)
}

func (l *Link) advance() {
	now := l.engine.Now()
	dt := float64(now - l.lastUpdate)
	if dt > 0 && len(l.active) > 0 {
		l.v += l.rate() * dt
	}
	l.lastUpdate = now
}

// Send enqueues a message of the given size; deliver fires once the last
// byte has crossed the link plus propagation latency. Zero-byte sends are
// delivered after latency only.
func (l *Link) Send(bytes int64, deliver func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative transfer size %d", bytes))
	}
	if deliver == nil {
		panic("simnet: nil deliver callback")
	}
	l.carried += bytes
	if bytes == 0 {
		l.engine.Schedule(l.latency, deliver)
		return
	}
	l.advance()
	tr := &transfer{targetV: l.v + float64(bytes), deliver: deliver}
	heap.Push(&l.active, tr)
	l.rearm()
}

func (l *Link) rearm() {
	if l.completion != nil {
		l.engine.Cancel(l.completion)
		l.completion = nil
	}
	if len(l.active) == 0 {
		return
	}
	remaining := l.active[0].targetV - l.v
	if remaining < 0 {
		remaining = 0
	}
	dt := remaining / l.rate()
	l.completion = l.engine.Schedule(dt, l.complete)
}

func (l *Link) complete() {
	l.completion = nil
	l.advance()
	if len(l.active) == 0 {
		return
	}
	// The completion event always corresponds to the current head (every
	// arrival re-arms), so the head is done even if float rounding left
	// l.v a hair short — without this, sub-ULP remainders at large
	// simulation times would re-arm forever without advancing the clock.
	head := heap.Pop(&l.active).(*transfer)
	if head.targetV > l.v {
		l.v = head.targetV
	}
	done := []*transfer{head}
	const eps = 1e-6 // a millionth of a byte
	for len(l.active) > 0 && l.active[0].targetV <= l.v+eps {
		done = append(done, heap.Pop(&l.active).(*transfer))
	}
	l.rearm()
	for _, tr := range done {
		// Propagation delay applies after the last byte is on the wire.
		l.engine.Schedule(l.latency, tr.deliver)
	}
}

// ConnState is the lifecycle of a simulated connection.
type ConnState int

// Connection lifecycle states.
const (
	StateConnecting ConnState = iota
	StateEstablished
	StateClosedByClient
	StateClosedByServer // surfaces as RST on the client's next write
	StateFailed         // handshake never completed
)

// String implements fmt.Stringer.
func (s ConnState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateEstablished:
		return "established"
	case StateClosedByClient:
		return "closed-by-client"
	case StateClosedByServer:
		return "closed-by-server"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// queuedSend is one message waiting for the connection's stream to drain.
type queuedSend struct {
	bytes     int64
	meta      any
	delivered func()
}

// Conn is a simulated TCP connection between one emulated client and the
// SUT. Message payloads are opaque to the network; the meta values let
// the endpoints pass parsed requests/responses without re-encoding.
//
// Each direction is a FIFO byte stream: at most one message per direction
// is on the link at a time and later messages queue behind it, so
// same-connection messages can never be reordered (TCP semantics).
type Conn struct {
	ID    int
	net   *Network
	state ConnState

	// Client-side callbacks (set before Connect).
	OnConnected  func(connectDuration float64)
	OnClientRecv func(bytes int64, meta any)
	OnReset      func()

	// Server-side callbacks. Set them via Network.AttachServer so that
	// bytes that arrived before the server accepted (which a real kernel
	// buffers) are replayed.
	OnServerRecv   func(bytes int64, meta any)
	OnClientClosed func() // FIN from the client (read returns EOF)

	connectStart sim.Time
	synAttempt   int
	synTimer     *sim.Event
	aborted      bool

	// Stream serialization state.
	upBusy   bool
	upQ      []queuedSend
	downBusy bool
	downQ    []queuedSend

	// Kernel receive buffering for data that beats accept().
	serverInbox       []queuedSend
	peerClosedPending bool
}

// State returns the connection's lifecycle state.
func (c *Conn) State() ConnState { return c.state }

// Network binds the two directional links and the listener together.
type Network struct {
	Engine *sim.Engine
	Up     *Link // client -> server (requests)
	Down   *Link // server -> client (responses)
	params Params

	// Listener state.
	acceptQueue []*Conn
	onPending   func() // server notification: backlog non-empty

	// OnSyn, when set, is invoked for every SYN that reaches the SUT,
	// whether it is queued or dropped. Server models use it to charge
	// the kernel CPU cost of connection handling — the paper attributes
	// httpd2's decline at extreme load partly to "the overhead of
	// rejecting a huge number of connections per second".
	OnSyn func(dropped bool)

	nextID int

	// Counters for reporting.
	SynDrops    int64
	Established int64
	Resets      int64
}

// NewNetwork builds a network path. It panics on invalid params.
func NewNetwork(engine *sim.Engine, params Params) *Network {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Network{
		Engine: engine,
		Up:     NewLink(engine, params.BandwidthBps, params.Latency),
		Down:   NewLink(engine, params.BandwidthBps, params.Latency),
		params: params,
	}
}

// Listen registers the server's "backlog non-empty" notification. The
// server must then drain with Accept.
func (n *Network) Listen(onPending func()) { n.onPending = onPending }

// Backlog returns the number of connections waiting to be accepted.
func (n *Network) Backlog() int { return len(n.acceptQueue) }

// Accept dequeues one established-but-unaccepted connection, or nil.
func (n *Network) Accept() *Conn {
	if len(n.acceptQueue) == 0 {
		return nil
	}
	c := n.acceptQueue[0]
	n.acceptQueue[0] = nil
	n.acceptQueue = n.acceptQueue[1:]
	return c
}

// synBackoff returns the delay before SYN retransmission attempt i
// (Linux-style exponential backoff: 3s, 6s, 12s, ...).
func synBackoff(attempt int) float64 {
	d := 3.0
	for i := 0; i < attempt; i++ {
		d *= 2
	}
	return d
}

// Connect starts the three-way handshake for a new connection. The
// returned Conn is in StateConnecting; OnConnected fires with the
// measured connect duration when the handshake completes, and the
// connection is placed in the accept backlog for the server.
//
// If the backlog is full the SYN is dropped and retransmitted with
// exponential backoff, exactly the mechanism that makes httperf's
// connection times jump from microseconds to seconds when a threaded
// server stops accepting (paper §4.2, figure 4).
func (n *Network) Connect(c *Conn) {
	if c.OnConnected == nil {
		panic("simnet: Connect without OnConnected")
	}
	n.nextID++
	c.ID = n.nextID
	c.net = n
	c.state = StateConnecting
	c.connectStart = n.Engine.Now()
	c.synAttempt = 0
	n.sendSyn(c)
}

func (n *Network) sendSyn(c *Conn) {
	// SYN packets are tiny; model them as latency-only.
	n.Engine.Schedule(n.params.Latency, func() {
		if c.aborted {
			return
		}
		dropped := len(n.acceptQueue) >= n.params.Backlog
		if n.OnSyn != nil {
			n.OnSyn(dropped)
		}
		if dropped {
			// Backlog overflow: kernel drops the SYN silently.
			n.SynDrops++
			c.synAttempt++
			if c.synAttempt > n.params.SynRetries {
				c.state = StateFailed
				return
			}
			c.synTimer = n.Engine.Schedule(synBackoff(c.synAttempt-1), func() { n.sendSyn(c) })
			return
		}
		// SYN-ACK: connection established at the client one latency later;
		// the connection sits in the accept queue until the server takes it.
		n.acceptQueue = append(n.acceptQueue, c)
		n.Established++
		n.Engine.Schedule(n.params.Latency, func() {
			if c.aborted {
				return
			}
			c.state = StateEstablished
			c.OnConnected(float64(n.Engine.Now() - c.connectStart))
		})
		if n.onPending != nil {
			n.onPending()
		}
	})
}

// AbortConnect cancels an in-progress handshake (client gave up — a
// client-timeout error in httperf terms).
func (n *Network) AbortConnect(c *Conn) {
	c.aborted = true
	if c.synTimer != nil {
		n.Engine.Cancel(c.synTimer)
		c.synTimer = nil
	}
	if c.state == StateConnecting {
		c.state = StateFailed
	}
}

// AttachServer installs the server-side handlers on an accepted
// connection and replays anything the kernel buffered while the
// connection sat in the accept queue: data that already arrived, and a
// FIN if the client has already gone away.
func (n *Network) AttachServer(c *Conn, onRecv func(bytes int64, meta any), onClosed func()) {
	c.OnServerRecv = onRecv
	c.OnClientClosed = onClosed
	for len(c.serverInbox) > 0 {
		m := c.serverInbox[0]
		c.serverInbox[0] = queuedSend{}
		c.serverInbox = c.serverInbox[1:]
		if c.OnServerRecv != nil {
			c.OnServerRecv(m.bytes, m.meta)
		}
	}
	if c.peerClosedPending {
		c.peerClosedPending = false
		if c.OnClientClosed != nil {
			c.OnClientClosed()
		}
	}
}

// ClientSend transmits request bytes to the server. If the server already
// closed its end, the client receives a reset instead (after one
// latency) — the paper's "connection reset" error class.
func (n *Network) ClientSend(c *Conn, bytes int64, meta any) {
	switch c.state {
	case StateClosedByServer:
		n.Resets++
		n.Engine.Schedule(n.params.Latency, func() {
			if c.OnReset != nil {
				c.OnReset()
			}
		})
	case StateEstablished:
		q := queuedSend{bytes: bytes, meta: meta}
		if c.upBusy {
			c.upQ = append(c.upQ, q)
			return
		}
		c.upBusy = true
		n.pumpUp(c, q)
	default:
		// Sending on a failed/closed-by-client connection is a client
		// bug in the model; drop silently to match a discarded segment.
	}
}

// pumpUp puts one uplink message on the wire and chains the next.
func (n *Network) pumpUp(c *Conn, q queuedSend) {
	n.Up.Send(q.bytes, func() {
		// The server may have closed while the request was in flight.
		switch {
		case c.state == StateClosedByServer:
			n.Resets++
			if c.OnReset != nil {
				c.OnReset()
			}
		case c.state == StateEstablished && c.OnServerRecv != nil:
			c.OnServerRecv(q.bytes, q.meta)
		case c.state == StateEstablished:
			// Not accepted yet: the kernel buffers the data.
			c.serverInbox = append(c.serverInbox, q)
		}
		if len(c.upQ) > 0 {
			next := c.upQ[0]
			c.upQ[0] = queuedSend{}
			c.upQ = c.upQ[1:]
			n.pumpUp(c, next)
			return
		}
		c.upBusy = false
	})
}

// ServerSend transmits response bytes to the client.
func (n *Network) ServerSend(c *Conn, bytes int64, meta any) {
	n.ServerSendCB(c, bytes, meta, nil)
}

// ServerSendCB is ServerSend with a drain notification: delivered fires
// (if non-nil) when the last byte leaves the send buffer, i.e. when a
// blocking write would return or a selector would report the socket
// writable again. It fires even if the client has since closed, because
// the kernel drains the buffer regardless.
func (n *Network) ServerSendCB(c *Conn, bytes int64, meta any, delivered func()) {
	if c.state != StateEstablished && c.state != StateClosedByClient {
		if delivered != nil {
			// Write to a dead connection completes immediately (EPIPE).
			n.Engine.Schedule(0, delivered)
		}
		return
	}
	q := queuedSend{bytes: bytes, meta: meta, delivered: delivered}
	if c.downBusy {
		c.downQ = append(c.downQ, q)
		return
	}
	c.downBusy = true
	n.pumpDown(c, q)
}

// pumpDown puts one downlink message on the wire and chains the next.
func (n *Network) pumpDown(c *Conn, q queuedSend) {
	n.Down.Send(q.bytes, func() {
		if c.state == StateEstablished && c.OnClientRecv != nil {
			c.OnClientRecv(q.bytes, q.meta)
		}
		if q.delivered != nil {
			q.delivered()
		}
		if len(c.downQ) > 0 {
			next := c.downQ[0]
			c.downQ[0] = queuedSend{}
			c.downQ = c.downQ[1:]
			n.pumpDown(c, next)
			return
		}
		c.downBusy = false
	})
}

// ServerClose closes the server's end. The client will observe a reset on
// its next write (keep-alive timeout behaviour of a threaded server).
func (n *Network) ServerClose(c *Conn) {
	if c.state == StateEstablished || c.state == StateConnecting {
		c.state = StateClosedByServer
	}
}

// ClientClose closes the client's end gracefully. The server observes the
// FIN one latency later (its next read returns EOF).
func (n *Network) ClientClose(c *Conn) {
	if c.state == StateEstablished {
		c.state = StateClosedByClient
		n.Engine.Schedule(n.params.Latency, func() {
			if c.OnClientClosed != nil {
				c.OnClientClosed()
			} else {
				// Not accepted yet: deliver the EOF when the server
				// attaches (AttachServer replays it).
				c.peerClosedPending = true
			}
		})
	}
}
