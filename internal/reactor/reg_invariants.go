//go:build linux && invariants

package reactor

// regSet shadows the kernel's epoll interest set when the invariant
// layer is compiled in, so internal/invariant call sites can check the
// reactor's connection table against what is actually registered. Each
// Poller is owned by one thread, so the map needs no lock.
type regSet struct{ m map[int]struct{} }

func newRegSet() regSet          { return regSet{m: make(map[int]struct{})} }
func (r regSet) add(fd int)      { r.m[fd] = struct{}{} }
func (r regSet) del(fd int)      { delete(r.m, fd) }
func (r regSet) has(fd int) bool { _, ok := r.m[fd]; return ok }
func (r regSet) size() int       { return len(r.m) }
