//go:build linux

package reactor

import (
	"fmt"
	"net"
	"syscall"
	"testing"
	"time"
)

func newPoller(t *testing.T) *Poller {
	t.Helper()
	p, err := NewPoller(64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func listen(t *testing.T) (lfd, port int) {
	t.Helper()
	lfd, port, err := Listen(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseFD(0, lfd) })
	return lfd, port
}

func dial(t *testing.T, port int) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", fmt.Sprintf("127.0.0.1:%d", port), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestListenPicksPort(t *testing.T) {
	_, port := listen(t)
	if port == 0 {
		t.Fatal("no port assigned")
	}
}

func TestAcceptAndReadiness(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	if err := p.Add(lfd, true, false); err != nil {
		t.Fatal(err)
	}
	client := dial(t, port)

	evs, err := p.Wait(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].FD != lfd || !evs[0].Readable {
		t.Fatalf("expected listener readable, got %+v", evs)
	}
	fd, done, err := Accept(0, lfd)
	if err != nil || done {
		t.Fatalf("accept failed: %v done=%v", err, done)
	}
	t.Cleanup(func() { CloseFD(0, fd) })
	// A second accept should report EAGAIN.
	if _, done, err := Accept(0, lfd); err != nil || !done {
		t.Fatalf("second accept: done=%v err=%v", done, err)
	}

	// Client writes; connection fd becomes readable.
	if err := p.Add(fd, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	evs, err = p.Wait(2000)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.FD == fd && ev.Readable {
			found = true
		}
	}
	if !found {
		t.Fatalf("conn fd not readable: %+v", evs)
	}
	buf := make([]byte, 16)
	n, eof, again, err := Read(0, fd, buf)
	if err != nil || eof || again || n != 4 || string(buf[:4]) != "ping" {
		t.Fatalf("read = %d %v %v %v (%q)", n, eof, again, err, buf[:n])
	}
	// No more data: EAGAIN.
	_, _, again, err = Read(0, fd, buf)
	if err != nil || !again {
		t.Fatalf("expected EAGAIN, got again=%v err=%v", again, err)
	}
}

func TestReadEOFOnPeerClose(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	_ = p
	client := dial(t, port)
	// Wait for the connection to be acceptable.
	waitReadable(t, lfd)
	fd, _, err := Accept(0, lfd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseFD(0, fd) })
	client.Close()
	// Poll until EOF is observable.
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 8)
		_, eof, again, err := Read(0, fd, buf)
		if eof {
			return
		}
		if err != nil {
			t.Fatalf("read error: %v", err)
		}
		if !again {
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw EOF")
		}
		time.Sleep(time.Millisecond)
	}
}

func waitReadable(t *testing.T, fd int) {
	t.Helper()
	p, err := NewPoller(8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Add(fd, true, false); err != nil {
		t.Fatal(err)
	}
	evs, err := p.Wait(2000)
	if err != nil || len(evs) == 0 {
		t.Fatalf("fd never readable: %v %v", evs, err)
	}
}

func TestWriteInterestToggle(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	client := dial(t, port)
	waitReadable(t, lfd)
	fd, _, err := Accept(0, lfd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseFD(0, fd) })
	_ = client

	if err := p.Add(fd, true, false); err != nil {
		t.Fatal(err)
	}
	// No write interest: a wait should time out (no events).
	evs, err := p.Wait(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.FD == fd && ev.Writable {
			t.Fatal("writable event without write interest")
		}
	}
	// Enable write interest: an idle socket is immediately writable.
	if err := p.Modify(fd, true, true); err != nil {
		t.Fatal(err)
	}
	evs, err = p.Wait(2000)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, ev := range evs {
		if ev.FD == fd && ev.Writable {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("no writable event after Modify: %+v", evs)
	}
}

func TestWriteFillsSocketBuffer(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	client := dial(t, port)
	waitReadable(t, lfd)
	fd, _, err := Accept(0, lfd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseFD(0, fd) })
	_ = client // client never reads: the server-side buffer must fill
	_ = p

	payload := make([]byte, 256<<10)
	total := 0
	sawAgain := false
	for i := 0; i < 100; i++ {
		n, again, err := Write(0, fd, payload)
		if err != nil {
			t.Fatalf("write error: %v", err)
		}
		total += n
		if again {
			sawAgain = true
			break
		}
	}
	if !sawAgain {
		t.Fatalf("socket buffer never filled after %d bytes", total)
	}
}

func TestWakeupInterruptsWait(t *testing.T) {
	p := newPoller(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		start := time.Now()
		evs, err := p.Wait(5000)
		if err != nil {
			t.Errorf("wait error: %v", err)
		}
		if len(evs) != 0 {
			t.Errorf("wakeup leaked events: %+v", evs)
		}
		if time.Since(start) > 2*time.Second {
			t.Error("wakeup did not interrupt the wait")
		}
	}()
	time.Sleep(50 * time.Millisecond)
	p.Wakeup()
	<-done
}

func TestWakeupCoalesces(t *testing.T) {
	p := newPoller(t)
	for i := 0; i < 100; i++ {
		p.Wakeup()
	}
	evs, err := p.Wait(1000)
	if err != nil || len(evs) != 0 {
		t.Fatalf("coalesced wakeups misbehaved: %v %v", evs, err)
	}
	// The pipe must be drained: another short wait times out cleanly.
	evs, err = p.Wait(20)
	if err != nil || len(evs) != 0 {
		t.Fatalf("wake pipe not drained: %v %v", evs, err)
	}
}

func TestRemoveStopsEvents(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	if err := p.Add(lfd, true, false); err != nil {
		t.Fatal(err)
	}
	p.Remove(lfd)
	dial(t, port)
	evs, err := p.Wait(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("events after Remove: %+v", evs)
	}
}

func TestHangupReported(t *testing.T) {
	p := newPoller(t)
	lfd, port := listen(t)
	client := dial(t, port)
	waitReadable(t, lfd)
	fd, _, err := Accept(0, lfd)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(fd, true, false); err != nil {
		t.Fatal(err)
	}
	// Force an RST by setting SO_LINGER 0 on the client before close.
	tc := client.(*net.TCPConn)
	_ = tc.SetLinger(0)
	tc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		evs, err := p.Wait(100)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.FD == fd && (ev.Hangup || ev.Readable) {
				return // RST surfaces as EPOLLERR|EPOLLHUP (or readable EOF)
			}
		}
	}
	t.Fatal("no hangup/readable event after RST")
}

func TestDoubleCloseSafe(t *testing.T) {
	p, err := NewPoller(8)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // must not panic or double-close another fd
}

func TestPollerDefaultSize(t *testing.T) {
	p, err := NewPoller(0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.events) != 1024 {
		t.Fatalf("default event buffer = %d", len(p.events))
	}
}

func TestAcceptOnIdleListenerReturnsDone(t *testing.T) {
	lfd, _ := listen(t)
	_, done, err := Accept(0, lfd)
	if err != nil || !done {
		t.Fatalf("expected done=true, got done=%v err=%v", done, err)
	}
}

func TestWriteToClosedPeer(t *testing.T) {
	lfd, port := listen(t)
	client := dial(t, port)
	waitReadable(t, lfd)
	fd, _, err := Accept(0, lfd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseFD(0, fd) })
	tc := client.(*net.TCPConn)
	_ = tc.SetLinger(0)
	tc.Close()
	time.Sleep(20 * time.Millisecond)
	// First write may succeed (buffered); a subsequent one must error
	// with EPIPE/ECONNRESET rather than crash the process.
	var lastErr error
	for i := 0; i < 5; i++ {
		_, _, lastErr = Write(0, fd, []byte("data"))
		if lastErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr == nil {
		t.Fatal("writes to reset peer never failed")
	}
	if lastErr != syscall.EPIPE && lastErr != syscall.ECONNRESET {
		t.Logf("note: got %v (acceptable on some kernels)", lastErr)
	}
}
