//go:build linux && !invariants

package reactor

// regSet is the zero-size, zero-cost stand-in for the invariant
// layer's interest-set shadow in default builds: every method is an
// empty inlineable no-op.
type regSet struct{}

func newRegSet() regSet     { return regSet{} }
func (regSet) add(int)      {}
func (regSet) del(int)      {}
func (regSet) has(int) bool { return false }
func (regSet) size() int    { return 0 }
