//go:build linux

// Package reactor is an explicit readiness-selection loop built directly
// on epoll(7) and non-blocking sockets via the syscall package — the Go
// equivalent of a Java NIO Selector. The Go runtime's own netpoller hides
// non-blocking I/O behind goroutines; the paper's contribution is the
// *explicit* event-driven architecture, so this package deliberately
// bypasses net.Conn and exposes readiness events and raw file
// descriptors to a single-threaded event loop.
//
// One Poller per reactor shard thread; the Wakeup pipe lets other
// threads (e.g. the acceptor handing over a new connection) interrupt a
// blocking Wait, exactly like Selector.wakeup().
//
// Every syscall helper takes a sysfault.Lane — the shard index of the
// calling event loop — so the fault seam's decision streams stay
// per-shard deterministic. Single-loop callers pass lane 0, the
// legacy stream.
package reactor

import (
	"fmt"
	"syscall"

	"repro/internal/sysfault"
)

// Event is one readiness notification.
type Event struct {
	FD       int
	Readable bool
	Writable bool
	// Hangup reports EPOLLHUP/EPOLLERR: the peer closed or the socket
	// failed; the connection should be torn down after draining.
	Hangup bool
}

// Poller wraps one epoll instance plus a wakeup pipe.
type Poller struct {
	epfd   int
	wakeR  int
	wakeW  int
	events []syscall.EpollEvent
	// evbuf is the reusable Event scratch Wait returns a prefix of —
	// one allocation at construction instead of one per wait, which on
	// a busy loop is one per loop iteration. Sized to events, so
	// translation can never grow it.
	evbuf  []Event
	closed bool
	// lane is the fault-seam stream this poller's Waits are addressed
	// to — the shard index of the loop that owns it.
	lane sysfault.Lane
	// reg shadows the kernel's interest set under -tags invariants (a
	// zero-cost no-op otherwise) so the invariant layer can check it
	// against the reactor's connection table.
	reg regSet
}

// NewPoller creates an epoll instance sized for n simultaneous events per
// Wait call (n <= 0 selects a default of 1024) on fault lane 0.
func NewPoller(n int) (*Poller, error) { return NewPollerLane(n, 0) }

// NewPollerLane is NewPoller with the owning shard's fault lane.
func NewPollerLane(n int, lane sysfault.Lane) (*Poller, error) {
	if n <= 0 {
		n = 1024
	}
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("reactor: epoll_create1: %w", err)
	}
	var pipeFDs [2]int
	if err := syscall.Pipe2(pipeFDs[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("reactor: pipe2: %w", err)
	}
	p := &Poller{
		epfd:   epfd,
		wakeR:  pipeFDs[0],
		wakeW:  pipeFDs[1],
		events: make([]syscall.EpollEvent, n),
		evbuf:  make([]Event, 0, n),
		lane:   lane,
		reg:    newRegSet(),
	}
	if err := p.Add(p.wakeR, true, false); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

func mask(readable, writable bool) uint32 {
	var m uint32 = syscall.EPOLLRDHUP
	if readable {
		m |= syscall.EPOLLIN
	}
	if writable {
		m |= syscall.EPOLLOUT
	}
	return m
}

// Add registers fd for the given interest set (level-triggered).
func (p *Poller) Add(fd int, readable, writable bool) error {
	ev := syscall.EpollEvent{Events: mask(readable, writable), Fd: int32(fd)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		return fmt.Errorf("reactor: epoll_ctl add fd %d: %w", fd, err)
	}
	p.reg.add(fd)
	return nil
}

// Modify changes fd's interest set — the reactor's write-interest dance:
// enable EPOLLOUT only while a response has unsent bytes.
func (p *Poller) Modify(fd int, readable, writable bool) error {
	ev := syscall.EpollEvent{Events: mask(readable, writable), Fd: int32(fd)}
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev); err != nil {
		return fmt.Errorf("reactor: epoll_ctl mod fd %d: %w", fd, err)
	}
	return nil
}

// Remove deregisters fd. Removing an fd that was already closed is
// harmless (the kernel removed it automatically).
func (p *Poller) Remove(fd int) {
	_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
	p.reg.del(fd)
}

// HasInterest reports whether fd is in the poller's interest-set
// shadow. Meaningful only under -tags invariants (always false
// otherwise); it exists for the invariant layer's interest-set checks.
func (p *Poller) HasInterest(fd int) bool { return p.reg.has(fd) }

// InterestCount returns the size of the poller's interest-set shadow
// (including the wakeup pipe). Meaningful only under -tags invariants
// (always 0 otherwise).
func (p *Poller) InterestCount() int { return p.reg.size() }

// Wait blocks until at least one registered fd is ready, the timeout (in
// ms, -1 = forever) elapses, or Wakeup is called. Wakeup drains
// internally and produces no Event. The returned slice is backed by a
// buffer owned by the Poller and is overwritten by the next Wait on
// it; callers must finish with the events before waiting again (every
// reactor loop naturally does).
//
//nio:hot
func (p *Poller) Wait(timeoutMs int) ([]Event, error) {
	n, err := sysfault.EpollWait(p.lane, p.epfd, p.events, timeoutMs)
	if err != nil {
		return nil, fmt.Errorf("reactor: epoll_wait: %w", err)
	}
	out := p.evbuf[:0]
	for i := 0; i < n; i++ {
		ev := p.events[i]
		fd := int(ev.Fd)
		if fd == p.wakeR {
			p.drainWake()
			continue
		}
		out = append(out, Event{
			FD:       fd,
			Readable: ev.Events&(syscall.EPOLLIN|syscall.EPOLLRDHUP) != 0,
			Writable: ev.Events&syscall.EPOLLOUT != 0,
			Hangup:   ev.Events&(syscall.EPOLLHUP|syscall.EPOLLERR) != 0,
		})
	}
	return out, nil
}

// Wakeup interrupts a concurrent Wait. Safe to call from any thread.
func (p *Poller) Wakeup() {
	var b [1]byte
	_, _ = syscall.Write(p.wakeW, b[:]) // EAGAIN means a wakeup is already pending
}

// drainWake empties the wakeup pipe. EAGAIN is the expected exit (the
// pipe is non-blocking and has been drained); EINTR is retried so a
// signal cannot leave stale wakeup bytes behind to spuriously interrupt
// the next Wait. The retry is an explicit classification rather than a
// retryEINTR closure: this runs inside every Wait, and a capturing
// closure would allocate per call.
//
//nio:hot
func (p *Poller) drainWake() {
	var buf [64]byte
	for {
		n, err := syscall.Read(p.wakeR, buf[:])
		if err == syscall.EINTR {
			continue // a signal is not a drained pipe
		}
		if err == syscall.EAGAIN {
			return // drained
		}
		if err != nil || n == 0 {
			return // pipe broken or closed; nothing left to drain
		}
	}
}

// Close releases the epoll instance and the wakeup pipe.
func (p *Poller) Close() {
	if p.closed {
		return
	}
	p.closed = true
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// ---------------------------------------------------------------------
// Socket helpers
// ---------------------------------------------------------------------

// soReusePort is SO_REUSEPORT, which the syscall package does not
// export on linux. Value from <asm-generic/socket.h>.
const soReusePort = 0xf

// Listen opens a non-blocking IPv4 listening socket on 127.0.0.1:port
// (port 0 picks a free port; the chosen port is returned).
func Listen(port, backlog int) (fd, boundPort int, err error) {
	return listenSock(port, backlog, false)
}

// ListenReusePort is Listen with SO_REUSEPORT set before bind, so N
// shards can each own a listening socket on the same port and the
// kernel hashes incoming connections across them — the accept-sharding
// path of the N-reactor architecture. Fails with the setsockopt error
// on kernels without SO_REUSEPORT (< 3.9); callers fall back to
// acceptor fan-out.
func ListenReusePort(port, backlog int) (fd, boundPort int, err error) {
	return listenSock(port, backlog, true)
}

func listenSock(port, backlog int, reusePort bool) (fd, boundPort int, err error) {
	fd, err = sysfault.Socket(0, syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return -1, 0, fmt.Errorf("reactor: socket: %w", err)
	}
	if err = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1); err != nil {
		_ = sysfault.Close(0, fd)
		return -1, 0, fmt.Errorf("reactor: SO_REUSEADDR: %w", err)
	}
	if reusePort {
		if err = syscall.SetsockoptInt(fd, syscall.SOL_SOCKET, soReusePort, 1); err != nil {
			_ = sysfault.Close(0, fd)
			return -1, 0, fmt.Errorf("reactor: SO_REUSEPORT: %w", err)
		}
	}
	sa := &syscall.SockaddrInet4{Port: port, Addr: [4]byte{127, 0, 0, 1}}
	if err = syscall.Bind(fd, sa); err != nil {
		_ = sysfault.Close(0, fd)
		return -1, 0, fmt.Errorf("reactor: bind: %w", err)
	}
	if err = syscall.Listen(fd, backlog); err != nil {
		_ = sysfault.Close(0, fd)
		return -1, 0, fmt.Errorf("reactor: listen: %w", err)
	}
	got, err := syscall.Getsockname(fd)
	if err != nil {
		_ = sysfault.Close(0, fd)
		return -1, 0, fmt.Errorf("reactor: getsockname: %w", err)
	}
	inet, ok := got.(*syscall.SockaddrInet4)
	if !ok {
		_ = sysfault.Close(0, fd)
		return -1, 0, fmt.Errorf("reactor: unexpected sockaddr %T", got)
	}
	return fd, inet.Port, nil
}

// DialTCP4 starts a non-blocking IPv4 connect to addr ("a.b.c.d:port").
// connected=false with a nil error means the connect is in flight
// (EINPROGRESS): register write interest and call ConnectResult when the
// socket signals writability. The fd is created non-blocking and
// close-on-exec, with Nagle disabled, exactly like an accepted socket —
// it is the upstream half of a proxy relay, and both halves must behave
// identically under the reactor.
func DialTCP4(lane sysfault.Lane, addr string) (fd int, connected bool, err error) {
	ip, port, err := parseIPv4Addr(addr)
	if err != nil {
		return -1, false, err
	}
	fd, err = sysfault.Socket(lane, syscall.AF_INET, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		return -1, false, fmt.Errorf("reactor: socket: %w", err)
	}
	_ = syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
	sa := &syscall.SockaddrInet4{Port: port, Addr: ip}
	switch err = sysfault.Connect(lane, fd, sa); err {
	case nil:
		return fd, true, nil
	case syscall.EINPROGRESS:
		return fd, false, nil
	default:
		_ = sysfault.Close(lane, fd)
		return -1, false, fmt.Errorf("reactor: connect %s: %w", addr, err)
	}
}

// ConnectResult resolves an in-flight non-blocking connect once the
// socket has signalled writability: nil means the connection is
// established, anything else is the connect failure (SO_ERROR). The fd
// is NOT closed on failure — the caller owns it either way.
func ConnectResult(fd int) error {
	soerr, err := syscall.GetsockoptInt(fd, syscall.SOL_SOCKET, syscall.SO_ERROR)
	if err != nil {
		return fmt.Errorf("reactor: getsockopt SO_ERROR: %w", err)
	}
	if soerr != 0 {
		return fmt.Errorf("reactor: connect: %w", syscall.Errno(soerr))
	}
	return nil
}

// parseIPv4Addr parses "a.b.c.d:port" without importing net (this
// package speaks raw sockaddrs only).
func parseIPv4Addr(addr string) (ip [4]byte, port int, err error) {
	colon := -1
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			colon = i
			break
		}
	}
	if colon <= 0 || colon == len(addr)-1 {
		return ip, 0, fmt.Errorf("reactor: address %q is not host:port", addr)
	}
	host, portStr := addr[:colon], addr[colon+1:]
	for i := 0; i < len(portStr); i++ {
		c := portStr[i]
		if c < '0' || c > '9' {
			return ip, 0, fmt.Errorf("reactor: bad port in %q", addr)
		}
		port = port*10 + int(c-'0')
		if port > 65535 {
			return ip, 0, fmt.Errorf("reactor: port out of range in %q", addr)
		}
	}
	oct, digits, idx := 0, 0, 0
	for i := 0; i <= len(host); i++ {
		if i == len(host) || host[i] == '.' {
			if digits == 0 || digits > 3 || oct > 255 || idx >= 4 {
				return ip, 0, fmt.Errorf("reactor: %q is not a dotted-quad IPv4 address", host)
			}
			ip[idx] = byte(oct)
			idx++
			oct, digits = 0, 0
			continue
		}
		c := host[i]
		if c < '0' || c > '9' {
			return ip, 0, fmt.Errorf("reactor: %q is not a dotted-quad IPv4 address", host)
		}
		oct = oct*10 + int(c-'0')
		digits++
	}
	if idx != 4 {
		return ip, 0, fmt.Errorf("reactor: %q is not a dotted-quad IPv4 address", host)
	}
	return ip, port, nil
}

// Accept accepts one pending connection from a non-blocking listener.
// done reports EAGAIN (nothing pending).
func Accept(lane sysfault.Lane, lfd int) (fd int, done bool, err error) {
	fd, err = sysfault.Accept4(lane, lfd, syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC)
	switch err {
	case nil:
		// Disable Nagle: the servers write complete responses.
		_ = syscall.SetsockoptInt(fd, syscall.IPPROTO_TCP, syscall.TCP_NODELAY, 1)
		return fd, false, nil
	case syscall.EAGAIN:
		return -1, true, nil
	case syscall.ECONNABORTED:
		return -1, false, nil // transient; caller loops
	default:
		return -1, false, fmt.Errorf("reactor: accept4: %w", err)
	}
}

// Read performs one non-blocking read. n == 0 with eof=true is a clean
// peer close; again=true means no data available now. EINTR is retried
// internally, so err never reports an interrupted syscall.
//
//nio:hot
func Read(lane sysfault.Lane, fd int, buf []byte) (n int, eof, again bool, err error) {
	n, err = sysfault.Read(lane, fd, buf)
	switch {
	case err == syscall.EAGAIN:
		return 0, false, true, nil
	case err != nil:
		return 0, false, false, err
	case n == 0:
		return 0, true, false, nil
	default:
		return n, false, false, nil
	}
}

// Write performs one non-blocking write; again=true means the socket
// buffer is full (register write interest and come back later). EINTR
// is retried internally rather than surfaced as a spurious again, so
// write interest is never armed for a mere signal.
//
//nio:hot
func Write(lane sysfault.Lane, fd int, buf []byte) (n int, again bool, err error) {
	n, err = sysfault.Write(lane, fd, buf)
	switch err {
	case nil:
		return n, false, nil
	case syscall.EAGAIN:
		return 0, true, nil
	default:
		return 0, false, err
	}
}

// Sendfile performs one non-blocking sendfile(2) of up to max bytes
// from srcFD (a regular file) at *off into the socket fd — the zero-copy
// response path. The kernel advances *off past whatever it sent, so the
// caller's offset is always the resume point; again=true means the
// socket buffer is full (register write interest and come back later).
// Because off is explicit, srcFD's file position is never touched and
// one shared descriptor can feed any number of concurrent responses.
// An interrupted call reports no progress and is simply retried: *off
// is untouched by a failing sendfile(2).
//
//nio:hot
func Sendfile(lane sysfault.Lane, fd, srcFD int, off *int64, max int) (n int, again bool, err error) {
	n, err = sysfault.Sendfile(lane, fd, srcFD, off, max)
	switch err {
	case nil:
		return n, false, nil
	case syscall.EAGAIN:
		return 0, true, nil
	default:
		return 0, false, fmt.Errorf("reactor: sendfile: %w", err)
	}
}

// CloseFD closes a socket.
func CloseFD(lane sysfault.Lane, fd int) { _ = sysfault.Close(lane, fd) }

// CloseWithReset sets SO_LINGER to zero and closes, so the peer receives
// an RST instead of an orderly FIN — how a server sheds a connection it
// no longer wants to account for (Apache's keep-alive recycling surfaces
// to clients exactly this way).
func CloseWithReset(lane sysfault.Lane, fd int) {
	_ = syscall.SetsockoptLinger(fd, syscall.SOL_SOCKET, syscall.SO_LINGER,
		&syscall.Linger{Onoff: 1, Linger: 0})
	_ = sysfault.Close(lane, fd)
}
