package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(t *testing.T, s Sampler, r *RNG, n int) float64 {
	t.Helper()
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Sample(r)
	}
	return sum / float64(n)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Drawing from the child must not perturb a sibling split taken later
	// from an identically-seeded parent that never consulted the child.
	parent2 := NewRNG(7)
	_ = parent2.Split() // discard the child stream
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	if parent.Uint64() != parent2.Uint64() {
		t.Fatal("consuming a split child perturbed the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn biased: bucket %d has %d/70000 draws", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(6)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(8)
	e := Exponential{MeanVal: 2.5}
	m := sampleMean(t, e, r, 200000)
	if math.Abs(m-2.5) > 0.1 {
		t.Errorf("exponential sample mean = %v, want ~2.5", m)
	}
}

func TestLognormalMean(t *testing.T) {
	r := NewRNG(9)
	l := Lognormal{Mu: 7, Sigma: 1}
	want := l.Mean()
	got := sampleMean(t, l, r, 400000)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("lognormal sample mean = %v, analytic %v", got, want)
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	r := NewRNG(10)
	p := Pareto{K: 100, Alpha: 2.5}
	n := 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < p.K {
			t.Fatalf("Pareto draw %v below scale %v", v, p.K)
		}
		sum += v
	}
	want := p.Mean()
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Pareto sample mean = %v, analytic %v", got, want)
	}
}

func TestParetoInfiniteMeanIsNaN(t *testing.T) {
	if !math.IsNaN((Pareto{K: 1, Alpha: 0.9}).Mean()) {
		t.Error("Pareto mean with alpha<=1 should be NaN")
	}
}

func TestBoundedParetoStaysInBounds(t *testing.T) {
	r := NewRNG(11)
	p := BoundedPareto{K: 10, H: 1e6, Alpha: 1.1}
	for i := 0; i < 100000; i++ {
		v := p.Sample(r)
		if v < p.K || v > p.H {
			t.Fatalf("BoundedPareto draw %v outside [%v, %v]", v, p.K, p.H)
		}
	}
}

func TestBoundedParetoMeanMatchesSamples(t *testing.T) {
	r := NewRNG(12)
	p := BoundedPareto{K: 10, H: 10000, Alpha: 1.5}
	want := p.Mean()
	got := sampleMean(t, p, r, 400000)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("BoundedPareto sample mean = %v, analytic %v", got, want)
	}
}

func TestWeibullMean(t *testing.T) {
	r := NewRNG(13)
	w := Weibull{Scale: 1.46, Shape: 0.382}
	want := w.Mean()
	got := sampleMean(t, w, r, 500000)
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("Weibull sample mean = %v, analytic %v", got, want)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]float64{1}, []Sampler{Constant{1}, Constant{2}}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewMixture([]float64{-1, 2}, []Sampler{Constant{1}, Constant{2}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]float64{0, 0}, []Sampler{Constant{1}, Constant{2}}); err == nil {
		t.Error("zero-sum weights should fail")
	}
}

func TestMixtureProportions(t *testing.T) {
	m, err := NewMixture([]float64{0.3, 0.7}, []Sampler{Constant{1}, Constant{2}})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(14)
	n := 200000
	ones := 0
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("component-1 fraction = %v, want ~0.3", frac)
	}
	if math.Abs(m.Mean()-1.7) > 1e-9 {
		t.Errorf("mixture mean = %v, want 1.7", m.Mean())
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := NewRNG(15)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Errorf("Zipf counts not monotone at head: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// Rank 0 should carry about 1/H(1000) of the mass (~13.4%).
	frac := float64(counts[0]) / 200000
	if frac < 0.11 || frac > 0.16 {
		t.Errorf("rank-0 mass = %v, want ~0.134", frac)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(500, 0.8)
	sum := 0.0
	for i := 0; i < 500; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Intn(n) is always in [0, n) for arbitrary positive n and seeds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BoundedPareto samples always land within [K, H].
func TestQuickBoundedPareto(t *testing.T) {
	f := func(seed uint64, kRaw, spanRaw uint16) bool {
		k := float64(kRaw%1000) + 1
		h := k + float64(spanRaw%10000) + 1
		p := BoundedPareto{K: k, H: h, Alpha: 1.2}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := p.Sample(r)
			if v < k || v > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Zipf ranks stay in range for arbitrary sizes.
func TestQuickZipfRankInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		z := NewZipf(n, 1.0)
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			rank := z.Rank(r)
			if rank < 0 || rank >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(10000, 1.0)
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Rank(r)
	}
	_ = sink
}
