package dist

import (
	"fmt"
	"math"
	"sort"
)

// Sampler is a source of float64 variates. All distributions in this
// package implement it, so workload models can be composed generically.
type Sampler interface {
	// Sample draws the next variate using r as the randomness source.
	Sample(r *RNG) float64
	// Mean returns the analytic mean of the distribution, or NaN if the
	// mean does not exist (e.g. Pareto with alpha <= 1).
	Mean() float64
}

// Constant is a degenerate distribution that always returns Value.
type Constant struct{ Value float64 }

// Sample implements Sampler.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean implements Sampler.
func (c Constant) Mean() float64 { return c.Value }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Sampler.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential is the exponential distribution with the given MeanVal.
type Exponential struct{ MeanVal float64 }

// Sample implements Sampler.
func (e Exponential) Sample(r *RNG) float64 { return e.MeanVal * r.ExpFloat64() }

// Mean implements Sampler.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Lognormal is the distribution of exp(N(Mu, Sigma^2)). SURGE uses it for
// the body of the file-size distribution.
type Lognormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l Lognormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Sampler.
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Pareto is the (unbounded) Pareto distribution with scale K (minimum
// value) and shape Alpha. SURGE uses it for the heavy tail of file sizes
// and for OFF (think) times.
type Pareto struct{ K, Alpha float64 }

// Sample implements Sampler.
func (p Pareto) Sample(r *RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.K / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean implements Sampler. The mean is infinite for Alpha <= 1; NaN is
// returned in that case.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.NaN()
	}
	return p.Alpha * p.K / (p.Alpha - 1)
}

// BoundedPareto is a Pareto distribution truncated to [K, H]. Workload
// models use it so a single pathological draw cannot exceed buffer or
// transfer budgets while the distribution remains heavy-tailed.
type BoundedPareto struct{ K, H, Alpha float64 }

// Sample implements Sampler (inversion of the truncated CDF).
func (p BoundedPareto) Sample(r *RNG) float64 {
	u := r.Float64()
	ka := math.Pow(p.K, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	x := -(u*ha - u*ka - ha) / (ha * ka)
	return math.Pow(1/x, 1/p.Alpha)
}

// Mean implements Sampler.
func (p BoundedPareto) Mean() float64 {
	if p.Alpha == 1 {
		return p.K * p.H / (p.H - p.K) * math.Log(p.H/p.K)
	}
	ka := math.Pow(p.K, p.Alpha)
	num := ka / (1 - math.Pow(p.K/p.H, p.Alpha)) * p.Alpha / (p.Alpha - 1)
	return num * (1/math.Pow(p.K, p.Alpha-1) - 1/math.Pow(p.H, p.Alpha-1))
}

// Weibull is the Weibull distribution with the given Scale and Shape.
// SURGE uses it for active OFF times between embedded-object requests.
type Weibull struct{ Scale, Shape float64 }

// Sample implements Sampler.
func (w Weibull) Sample(r *RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
		}
	}
}

// Mean implements Sampler.
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// Mixture draws from Components[i] with probability Weights[i]. SURGE's
// file-size model is a lognormal/Pareto mixture.
type Mixture struct {
	Weights    []float64
	Components []Sampler
	cum        []float64
}

// NewMixture validates and returns a mixture distribution. Weights need
// not sum exactly to one; they are normalized.
func NewMixture(weights []float64, components []Sampler) (*Mixture, error) {
	if len(weights) != len(components) || len(weights) == 0 {
		return nil, fmt.Errorf("dist: mixture needs equal, non-zero numbers of weights and components (got %d, %d)", len(weights), len(components))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: mixture weight %v is invalid", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to %v", total)
	}
	m := &Mixture{Weights: weights, Components: components, cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m, nil
}

// Sample implements Sampler.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.Components) {
		i = len(m.Components) - 1
	}
	return m.Components[i].Sample(r)
}

// Mean implements Sampler.
func (m *Mixture) Mean() float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	mean := 0.0
	for i, c := range m.Components {
		mean += m.Weights[i] / total * c.Mean()
	}
	return mean
}

// Zipf draws integers in [0, N) with probability proportional to
// 1/(rank+1)^S — the web-object popularity model SURGE (and most web
// caching literature) uses. It precomputes the CDF, so Sample is a binary
// search: O(log N) with zero allocation.
type Zipf struct {
	N   int
	S   float64
	cdf []float64
}

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent s. It
// panics if n <= 0 or s < 0, which are programming errors.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("dist: Zipf with non-positive n")
	}
	if s < 0 || math.IsNaN(s) {
		panic("dist: Zipf with negative exponent")
	}
	z := &Zipf{N: n, S: s, cdf: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = acc
	}
	for i := range z.cdf {
		z.cdf[i] /= acc
	}
	z.cdf[n-1] = 1
	return z
}

// Rank draws a popularity rank in [0, N); rank 0 is the most popular.
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.N {
		i = z.N - 1
	}
	return i
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
