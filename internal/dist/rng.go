// Package dist provides the deterministic random-number and probability
// distribution primitives the workload models are built on.
//
// Everything in this package is seeded explicitly and has no global state,
// so simulation runs and benchmarks are exactly reproducible: the same seed
// always yields the same request stream. The generator is SplitMix64 fed
// into xoshiro256**, the same construction the Go runtime uses internally,
// implemented here so that the stream is stable across Go releases.
package dist

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees the four words of internal state are well distributed even
// for small or similar seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of r's for all
// practical purposes. It is used to hand child components (one per client,
// one per distribution) their own streams so that adding a component does
// not perturb the draws seen by the others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method, which needs no tables and is branch-cheap.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed variate with rate 1
// (mean 1) by inversion.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
