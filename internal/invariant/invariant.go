// Package invariant is the build-tag-gated runtime assertion layer: the
// dynamic complement to the static analyzers in internal/analysis. The
// analyzers prove what they can about the syscall-heavy hot paths at
// compile time; the assertions in this package catch what static
// analysis cannot see — refcounts driven negative by a double Release,
// an epoll interest set that drifts from the reactor's connection
// table, output queued on a connection that was already torn down.
//
// By default every assertion compiles to nothing: Enabled is the
// constant false, the Assert functions are empty, and call sites guard
// any non-trivial condition or message formatting with
//
//	if invariant.Enabled { invariant.Assertf(...) }
//
// so the disabled build carries zero instructions and zero allocations
// for the check. Building with `-tags invariants` (the CI invariants
// job runs the whole suite that way, under -race) turns every assertion
// into a hard panic with an "invariant violation:" prefix, so a
// violated invariant fails loudly at the point of corruption instead of
// surfacing later as a leaked fd or a wedged loop.
package invariant
