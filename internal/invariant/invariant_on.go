//go:build invariants

package invariant

import "fmt"

// Enabled reports whether invariant checking is compiled in. It is a
// constant, so `if invariant.Enabled { ... }` blocks are dead-code
// eliminated entirely in default builds.
const Enabled = true

// Assert panics with the invariant-violation prefix when cond is false.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant violation: " + msg)
	}
}

// Assertf is Assert with fmt-style formatting. Call sites must guard
// with `if invariant.Enabled` so argument evaluation costs nothing in
// default builds.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violation: " + fmt.Sprintf(format, args...))
	}
}
