//go:build !invariants

package invariant

import "testing"

// The default build must compile the assertion layer out: Enabled is
// the constant false and a failing assertion is a no-op, so production
// binaries pay nothing for the instrumented call sites.

func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without -tags invariants")
	}
}

func TestAssertionsCompileOut(t *testing.T) {
	// A violated assertion must do nothing in a default build.
	Assert(false, "this must not panic")
	Assertf(false, "this must not panic either (%d)", 42)
}
