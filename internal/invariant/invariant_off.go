//go:build !invariants

package invariant

// Enabled reports whether invariant checking is compiled in. It is a
// constant, so `if invariant.Enabled { ... }` blocks are dead-code
// eliminated entirely in default builds.
const Enabled = false

// Assert is a no-op in default builds.
func Assert(bool, string) {}

// Assertf is a no-op in default builds.
func Assertf(bool, string, ...any) {}
