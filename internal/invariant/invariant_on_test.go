//go:build invariants

package invariant

import (
	"strings"
	"testing"
)

func TestEnabled(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under -tags invariants")
	}
}

func TestAssertPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic under -tags invariants")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "invariant violation: ") {
			t.Fatalf("panic value %v lacks the invariant-violation prefix", r)
		}
		if !strings.Contains(msg, "boom") {
			t.Fatalf("panic message %q lost the caller's text", msg)
		}
	}()
	Assert(false, "boom")
}

func TestAssertfFormats(t *testing.T) {
	defer func() {
		r := recover()
		msg, _ := r.(string)
		if msg != "invariant violation: refs went to -1" {
			t.Fatalf("Assertf produced %q", msg)
		}
	}()
	Assertf(false, "refs went to %d", -1)
}

func TestTrueConditionIsSilent(t *testing.T) {
	Assert(true, "never")
	Assertf(true, "never %d", 0)
}
