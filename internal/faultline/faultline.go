// Package faultline is an in-process TCP fault-injection proxy and
// deterministic link emulator: it sits between a client (typically
// internal/loadgen) and a live server and manufactures, reproducibly,
// both the degraded-client behaviours the paper's overload figures are
// made of — slow-read clients that dribble request bytes (slowloris),
// stalled readers, abrupt RSTs, half-closes — and the degraded *links*
// the paper's bandwidth-bounded figures run on: token-bucket rate
// shaping, propagation delay, seeded jitter, seeded segment loss and
// reordering, and a bounded drop-tail queue, per direction (see
// link.go for the discipline model).
//
// Each accepted connection is assigned a Profile by the configured Plan
// from a per-connection RNG derived from (Seed, connection index), and
// every per-segment link decision comes from an independent stream
// derived from (Seed, connection index, direction, segment index), so
// an experiment replays bit-for-bit regardless of goroutine scheduling.
// Per-fault counters (internal/metrics.Counter) report how often each
// fault actually fired; per-direction LinkStats report what the
// discipline did to the byte stream.
//
// The proxy deliberately uses net.Conn and goroutines: it plays the
// *network side* of the experiment, where the paper's httperf machines
// and Ethernet switches sat, and is not itself the system under study.
package faultline

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
)

// Profile describes the faults applied to one proxied connection. The
// zero value is a transparent, unthrottled pass-through.
type Profile struct {
	// Up and Down are the per-direction link disciplines: Up shapes the
	// client→server (request) path, Down the server→client (response)
	// path. Zero values are transparent.
	Up   Link
	Down Link
	// UpBytesPerSec, when positive, throttles the client→server
	// direction to this rate — the slowloris dribble. Shorthand for
	// Up.RateBytesPerSec (which wins when both are set).
	UpBytesPerSec int
	// DownBytesPerSec, when positive, throttles the server→client
	// direction — a per-connection bandwidth cap, the live analogue of
	// the paper's 100 Mbit/s client links. Shorthand for
	// Down.RateBytesPerSec.
	DownBytesPerSec int
	// StallAfterBytes, when positive, stops draining the server→client
	// direction after this many response bytes: the reader stalls with
	// the response half-delivered, pinning the server's write path until
	// something times out.
	StallAfterBytes int64
	// RSTAfterBytes, when positive, aborts the connection with a TCP RST
	// (SO_LINGER=0 close of both sides) after this many response bytes.
	RSTAfterBytes int64
	// HalfCloseAfterBytes, when positive, sends FIN to the server
	// (CloseWrite) after this many request bytes while continuing to
	// read the response — a client that shuts down its send side early.
	HalfCloseAfterBytes int64
	// ExtraLatency, when positive, adds propagation delay in both
	// directions. Shorthand for Up.Delay/Down.Delay.
	ExtraLatency time.Duration
}

// normalized folds the legacy shorthand fields into the per-direction
// Links so the pipeline has one source of truth.
func (prof Profile) normalized() Profile {
	if prof.UpBytesPerSec > 0 && prof.Up.RateBytesPerSec == 0 {
		prof.Up.RateBytesPerSec = prof.UpBytesPerSec
	}
	if prof.DownBytesPerSec > 0 && prof.Down.RateBytesPerSec == 0 {
		prof.Down.RateBytesPerSec = prof.DownBytesPerSec
	}
	if prof.ExtraLatency > 0 {
		prof.Up.Delay += prof.ExtraLatency
		prof.Down.Delay += prof.ExtraLatency
	}
	return prof
}

// Plan assigns a Profile to the conn-th accepted connection. rng is
// derived deterministically from the proxy Seed and conn, so a Plan that
// randomizes (e.g. "30% of connections are slow readers") is still
// reproducible across runs.
type Plan func(conn int, rng *dist.RNG) Profile

// Config parameterizes a Proxy.
type Config struct {
	// Upstream is the host:port of the server under test. Required.
	Upstream string
	// Seed derives the per-connection RNG streams handed to Plan and the
	// per-direction link decision streams.
	Seed uint64
	// Plan picks each connection's faults; nil proxies transparently.
	Plan Plan
	// DialTimeout bounds the upstream dial (default 5 s).
	DialTimeout time.Duration
}

// Stats is a snapshot of the proxy's counters. The per-fault counts
// increment when a fault actually engages on a connection, not when a
// profile merely requests it; Up/Down aggregate what the link
// discipline did to the bytes that flowed.
type Stats struct {
	Conns        int64 // connections accepted and proxied
	SlowReads    int64 // connections that dribbled request bytes
	Stalls       int64 // responses stalled mid-transfer
	Resets       int64 // connections aborted with RST
	HalfCloses   int64 // early FINs sent upstream
	Capped       int64 // connections with a download bandwidth cap
	Delayed      int64 // connections with added propagation delay
	LossyConns   int64 // connections with seeded segment loss
	ReorderConns int64 // connections with seeded segment reordering
	BytesUp      int64 // client→server bytes forwarded
	BytesDown    int64 // server→client bytes forwarded

	// Up and Down are the per-direction link-discipline aggregates.
	Up   LinkStats
	Down LinkStats
}

// String renders the snapshot in a stable three-line format for test
// logs, chaos artifacts, and golden assertions.
func (s Stats) String() string {
	return fmt.Sprintf(
		"conns=%d slowreads=%d stalls=%d resets=%d halfcloses=%d capped=%d delayed=%d lossy=%d reordering=%d\nup:   %s\ndown: %s",
		s.Conns, s.SlowReads, s.Stalls, s.Resets, s.HalfCloses,
		s.Capped, s.Delayed, s.LossyConns, s.ReorderConns,
		s.Up, s.Down)
}

// Proxy is the fault-injection proxy. Create with New, tear down with
// Close.
type Proxy struct {
	cfg Config
	ln  net.Listener

	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	conns map[net.Conn]struct{} // both sides of every live pair

	nConns       metrics.Counter
	slowReads    metrics.Counter
	stalls       metrics.Counter
	resets       metrics.Counter
	halfCloses   metrics.Counter
	capped       metrics.Counter
	delayed      metrics.Counter
	lossyConns   metrics.Counter
	reorderConns metrics.Counter
	bytesUp      metrics.Counter
	bytesDown    metrics.Counter

	upLink   linkCounters
	downLink linkCounters
}

// New binds the proxy on a fresh loopback port and starts accepting.
func New(cfg Config) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("faultline: Upstream is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultline: listen: %w", err)
	}
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; point clients here instead of
// at the server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:        p.nConns.Value(),
		SlowReads:    p.slowReads.Value(),
		Stalls:       p.stalls.Value(),
		Resets:       p.resets.Value(),
		HalfCloses:   p.halfCloses.Value(),
		Capped:       p.capped.Value(),
		Delayed:      p.delayed.Value(),
		LossyConns:   p.lossyConns.Value(),
		ReorderConns: p.reorderConns.Value(),
		BytesUp:      p.bytesUp.Value(),
		BytesDown:    p.bytesDown.Value(),
		Up:           p.upLink.snapshot(p.bytesUp.Value()),
		Down:         p.downLink.snapshot(p.bytesDown.Value()),
	}
}

// Close stops accepting, severs every proxied connection, and waits for
// all pumps to exit. Safe to call more than once.
func (p *Proxy) Close() {
	p.stopOnce.Do(func() {
		close(p.stop)
		p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
}

// connSeed mixes the proxy seed with the connection index (SplitMix64
// constant) so each connection gets an independent, reproducible stream.
func connSeed(seed uint64, idx int) uint64 {
	return seed + uint64(idx)*0x9e3779b97f4a7c15
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	idx := 0
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		profile := Profile{}
		if p.cfg.Plan != nil {
			profile = p.cfg.Plan(idx, dist.NewRNG(connSeed(p.cfg.Seed, idx)))
		}
		p.nConns.Inc()
		p.wg.Add(1)
		go p.proxyConn(client, profile, idx)
		idx++
	}
}

func (p *Proxy) track(c net.Conn, on bool) {
	p.mu.Lock()
	if on {
		p.conns[c] = struct{}{}
	} else {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// proxyConn dials upstream and runs the two directional pumps.
func (p *Proxy) proxyConn(client net.Conn, prof Profile, idx int) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.cfg.Upstream, p.cfg.DialTimeout)
	if err != nil {
		client.Close()
		return
	}
	p.track(client, true)
	p.track(server, true)
	defer func() {
		p.track(client, false)
		p.track(server, false)
		client.Close()
		server.Close()
	}()

	prof = prof.normalized()

	// Classification counters: these profiles engage from byte one.
	if prof.Up.RateBytesPerSec > 0 {
		p.slowReads.Inc()
	}
	if prof.Down.RateBytesPerSec > 0 {
		p.capped.Inc()
	}
	if prof.Up.Delay > 0 || prof.Down.Delay > 0 {
		p.delayed.Inc()
	}
	if prof.Up.LossProb > 0 || prof.Down.LossProb > 0 {
		p.lossyConns.Inc()
	}
	if prof.Up.ReorderProb > 0 || prof.Down.ReorderProb > 0 {
		p.reorderConns.Inc()
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pumpUp(client, server, prof, idx)
	}()
	go func() {
		defer wg.Done()
		p.pumpDown(client, server, prof, idx)
	}()
	wg.Wait()
}

// sleep waits for d or until the proxy is closing; it reports false when
// the proxy is shutting down.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-p.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// forward is the transparent fast path for a direction with no
// discipline: one synchronous write, no segmentation.
func (p *Proxy) forward(dst net.Conn, buf []byte, counter *metrics.Counter) error {
	n, err := dst.Write(buf)
	counter.Add(int64(n))
	return err
}

// closeWrite forwards a FIN to the peer when the transport supports it.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
}

// pumpUp forwards client→server: the request path. Slowloris dribble,
// half-close, and the Up link discipline apply here.
func (p *Proxy) pumpUp(client, server net.Conn, prof Profile, idx int) {
	var fd *feeder
	var pc *pacer
	if prof.Up.scheduled() {
		fd = newFeeder(p, prof.Up, StreamSeed(p.cfg.Seed, idx, DirUp), &p.upLink)
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			p.linkWriter(server, fd.lk, fd.ch, &p.bytesUp, func() { closeWrite(server) })
		}()
		defer wwg.Wait()
		defer fd.close()
	} else if prof.Up.active() {
		pc = newPacer(p, prof.Up, &p.upLink)
	}
	send := func(chunk []byte) bool {
		switch {
		case fd != nil:
			return fd.feed(chunk)
		case pc != nil:
			return pc.send(server, chunk, &p.bytesUp)
		}
		return p.forward(server, chunk, &p.bytesUp) == nil
	}

	buf := make([]byte, 32<<10)
	var sent int64
	for {
		n, err := client.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if prof.HalfCloseAfterBytes > 0 && sent+int64(n) > prof.HalfCloseAfterBytes {
				chunk = chunk[:prof.HalfCloseAfterBytes-sent]
			}
			if len(chunk) > 0 {
				if !send(chunk) {
					return
				}
				sent += int64(len(chunk))
			}
			if prof.HalfCloseAfterBytes > 0 && sent >= prof.HalfCloseAfterBytes {
				p.halfCloses.Inc()
				if fd == nil {
					closeWrite(server)
				}
				// With a pipeline, the deferred close lets the writer
				// flush the queue and forward the FIN behind it.
				return
			}
		}
		if err != nil {
			// Client finished sending: forward the FIN upstream (behind
			// any queued bytes) but keep the down pump alive for the
			// tail of the response.
			if fd == nil {
				closeWrite(server)
			}
			return
		}
	}
}

// pumpDown forwards server→client: the response path. Stall, RST, and
// the Down link discipline apply here.
func (p *Proxy) pumpDown(client, server net.Conn, prof Profile, idx int) {
	var fd *feeder
	var pc *pacer
	if prof.Down.scheduled() {
		fd = newFeeder(p, prof.Down, StreamSeed(p.cfg.Seed, idx, DirDown), &p.downLink)
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			p.linkWriter(client, fd.lk, fd.ch, &p.bytesDown, func() { closeWrite(client) })
		}()
		defer wwg.Wait()
		defer fd.close()
	} else if prof.Down.active() {
		pc = newPacer(p, prof.Down, &p.downLink)
	}
	send := func(chunk []byte) bool {
		switch {
		case fd != nil:
			return fd.feed(chunk)
		case pc != nil:
			return pc.send(client, chunk, &p.bytesDown)
		}
		return p.forward(client, chunk, &p.bytesDown) == nil
	}

	buf := make([]byte, 32<<10)
	var recvd int64
	for {
		if prof.StallAfterBytes > 0 && recvd >= prof.StallAfterBytes {
			// Stalled reader: stop draining the server and hold the
			// connection open until the proxy closes or the server gives
			// up. The server's response backs up behind a full socket
			// buffer — the paper's blocked-writer regime.
			p.stalls.Inc()
			<-p.stop
			return
		}
		n, err := server.Read(buf)
		if n > 0 {
			recvd += int64(n)
			if prof.RSTAfterBytes > 0 && recvd >= prof.RSTAfterBytes {
				p.resets.Inc()
				abort(client)
				abort(server)
				return
			}
			if !send(buf[:n]) {
				return
			}
		}
		if err != nil {
			// Server finished: forward the FIN to the client (behind any
			// queued response bytes).
			if fd == nil {
				closeWrite(client)
			}
			return
		}
	}
}

// abort closes c so the peer sees an RST, not an orderly FIN.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// ---------------------------------------------------------------------
// Canned plans for the paper's standard attacks and link conditions.
// ---------------------------------------------------------------------

// Slowloris returns a Plan that dribbles every connection's request
// bytes at the given rate — the canonical thread-pool-exhaustion attack.
func Slowloris(bytesPerSec int) Plan {
	return func(int, *dist.RNG) Profile {
		return Profile{UpBytesPerSec: bytesPerSec}
	}
}

// Transparent returns a no-fault pass-through Plan.
func Transparent() Plan {
	return func(int, *dist.RNG) Profile { return Profile{} }
}

// LinkPlan returns a Plan that applies the same per-direction discipline
// to every connection — an emulated physical link shared by nothing but
// fairness (callers split an aggregate rate across the expected
// connection count; see the scenario package).
func LinkPlan(up, down Link) Plan {
	return func(int, *dist.RNG) Profile {
		return Profile{Up: up, Down: down}
	}
}

// Mixed returns a Plan where each connection independently draws one
// fault with probability pFault (uniform over the listed profiles),
// otherwise passes through — hostile traffic diluted into a healthy
// stream, reproducibly.
func Mixed(pFault float64, faults ...Profile) Plan {
	return func(_ int, rng *dist.RNG) Profile {
		if len(faults) == 0 || rng.Float64() >= pFault {
			return Profile{}
		}
		return faults[rng.Intn(len(faults))]
	}
}
