package scenario

import (
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

func get(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCatalogIsWellFormed(t *testing.T) {
	cat := Catalog()
	if len(cat) < 6 {
		t.Fatalf("catalog too small: %d scenarios", len(cat))
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("scenario missing name/description: %+v", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Clients <= 0 || s.ObjectBytes <= 0 || s.RequestsPerSession <= 0 ||
			s.Duration <= 0 {
			t.Fatalf("scenario %q has zero-valued knobs: %+v", s.Name, s)
		}
	}
	for _, want := range []string{"bw-100mbit", "bw-200mbit", "bw-1gbit",
		"loss-1pct", "jitter-storm", "reorder-burst"} {
		if !seen[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestLinkSplitsAggregateAcrossClients(t *testing.T) {
	s := get(t, "bw-100mbit")
	lk := s.Link()
	want := int(experiments.Mbit(100) / scale / float64(s.Clients))
	if lk.RateBytesPerSec != want {
		t.Fatalf("per-conn rate = %d, want %d", lk.RateBytesPerSec, want)
	}
	if lk.Delay != time.Millisecond {
		t.Fatalf("delay = %v", lk.Delay)
	}
}

func TestSourceEmitsFixedSessions(t *testing.T) {
	s := get(t, "bw-200mbit")
	src := s.Source()(0, dist.NewRNG(1))
	sess := src.NextSession()
	if len(sess.Requests) != s.RequestsPerSession {
		t.Fatalf("session has %d requests, want %d", len(sess.Requests), s.RequestsPerSession)
	}
	for _, r := range sess.Requests {
		if r.Object.Path() != "/obj/0" || r.Object.Size != s.ObjectBytes {
			t.Fatalf("unexpected request %+v", r)
		}
	}
	if sess.TotalBytes() != int64(s.RequestsPerSession)*s.ObjectBytes {
		t.Fatalf("TotalBytes = %d", sess.TotalBytes())
	}
}

// The prediction model must reproduce the paper's regime split before
// the live harness is held to it: bandwidth-bound at the scaled 100 and
// 200 Mbit caps, CPU-bound (HandlerDelay ceiling) at the scaled 1 Gbit.
func TestPredictReproducesRegimeSplit(t *testing.T) {
	p100 := Predict(get(t, "bw-100mbit"), 1)
	p200 := Predict(get(t, "bw-200mbit"), 1)
	p1g := Predict(get(t, "bw-1gbit"), 1)

	t.Logf("predicted goodput: 100mbit=%.0f B/s  200mbit=%.0f B/s  1gbit=%.0f B/s",
		p100.BytesPerSec, p200.BytesPerSec, p1g.BytesPerSec)

	cap100 := experiments.Mbit(100) / scale
	cap200 := experiments.Mbit(200) / scale
	cpuCeiling := float64(catalogObjectBytes) / catalogHandlerDelay.Seconds()

	near := func(got, want, tol float64) bool {
		return math.Abs(got-want)/want <= tol
	}
	// Link-bound: within 10% of the link cap, well under the CPU ceiling.
	if !near(p100.BytesPerSec, cap100, 0.10) {
		t.Errorf("100mbit prediction %.0f not near link cap %.0f", p100.BytesPerSec, cap100)
	}
	if !near(p200.BytesPerSec, cap200, 0.10) {
		t.Errorf("200mbit prediction %.0f not near link cap %.0f", p200.BytesPerSec, cap200)
	}
	// CPU-bound: within 15% of the handler ceiling, well under the link.
	if !near(p1g.BytesPerSec, cpuCeiling, 0.15) {
		t.Errorf("1gbit prediction %.0f not near CPU ceiling %.0f", p1g.BytesPerSec, cpuCeiling)
	}
	if p1g.BytesPerSec >= experiments.Mbit(1000)/scale*0.8 {
		t.Errorf("1gbit prediction %.0f suspiciously close to the link cap — regime split lost", p1g.BytesPerSec)
	}
	// Ordering is the figure's shape.
	if !(p100.BytesPerSec < p200.BytesPerSec && p200.BytesPerSec < p1g.BytesPerSec) {
		t.Errorf("regime ordering violated: %.0f, %.0f, %.0f",
			p100.BytesPerSec, p200.BytesPerSec, p1g.BytesPerSec)
	}
}

// Stochastic faults must only ever slow the prediction down.
func TestPredictFaultPenaltiesReduceThroughput(t *testing.T) {
	clean := get(t, "bw-200mbit")
	lossy := get(t, "loss-1pct")
	// loss-1pct shares the 200 Mbit-scaled link; the loss penalty must cost.
	pc, pl := Predict(clean, 1), Predict(lossy, 1)
	if pl.BytesPerSec >= pc.BytesPerSec {
		t.Fatalf("loss prediction %.0f not below clean %.0f", pl.BytesPerSec, pc.BytesPerSec)
	}
	if pl.BytesPerSec <= 0 {
		t.Fatalf("loss prediction degenerate: %.0f", pl.BytesPerSec)
	}
}

func TestPredictionDrift(t *testing.T) {
	p := Prediction{BytesPerSec: 1000}
	if d := p.Drift(900); math.Abs(d-0.1) > 1e-9 {
		t.Fatalf("Drift(900) = %v, want 0.1", d)
	}
	if d := p.Drift(1100); math.Abs(d-0.1) > 1e-9 {
		t.Fatalf("Drift(1100) = %v, want 0.1", d)
	}
}
