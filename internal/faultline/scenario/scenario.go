// Package scenario is the scripted chaos harness: a catalog of named,
// seed-deterministic degraded-network scenarios that run real load
// (internal/loadgen) against a live server through the faultline link
// emulator, plus a matching discrete-event prediction (internal/sim +
// internal/simnet) so every live measurement can be cross-checked
// against the simulator the paper's Figures 5–6 were produced with.
//
// A Scenario describes one experiment: an emulated link (aggregate
// bandwidth split evenly across client connections, propagation delay,
// jitter, loss, reordering), a fixed-size object workload, the client
// population, and the per-request CPU cost pinned into the server via
// core.Fault{Delay: ...}. Pinning the CPU cost is what makes the
// paper's regime split reproducible at 1/10 scale on a shared CI
// machine: the server's compute ceiling is a configured constant, not
// the vagaries of the host, so "throughput tracks the link at 100 Mbit
// and tracks the CPU at 1 Gbit" is a property of the scenario, not of
// the hardware.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/faultline"
	"repro/internal/loadgen"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/surge"
)

// Scenario is one named degraded-network experiment.
type Scenario struct {
	Name        string
	Description string

	// Clients is the closed-loop client population.
	Clients int
	// AggregateBps, when positive, is the emulated shared link capacity
	// in bytes/s for the response direction, split evenly across the
	// Clients connections (the live analogue of simnet's shared link).
	AggregateBps float64
	// Delay/Jitter/LossProb/ReorderProb parameterize the per-connection
	// downlink discipline (see faultline.Link).
	Delay       time.Duration
	Jitter      time.Duration
	LossProb    float64
	ReorderProb float64

	// ObjectBytes is the fixed response body size; every request fetches
	// /obj/0 of this size so throughput arithmetic is exact.
	ObjectBytes int64
	// RequestsPerSession is the keep-alive burst length per session.
	RequestsPerSession int
	// HandlerDelay is the per-request service time injected into the
	// server (core.Fault{Delay}); it pins the CPU-bound regime's ceiling
	// at concurrency/HandlerDelay replies/s.
	HandlerDelay time.Duration

	// Warmup and Duration delimit the loadgen measurement window.
	Warmup   time.Duration
	Duration time.Duration
}

// scale shrinks the paper's link rates to 1/10 so the bandwidth-bound
// scenarios saturate a CI container without moving gigabits.
const scale = 10

// Workload constants shared by the catalog: 16 KiB objects keep the
// segment count per reply meaningful (12 segments) while a 2.5 ms
// pinned handler cost puts the single-worker CPU ceiling (~400
// replies/s ≈ 6.5 MB/s) between the scaled 200 Mbit and 1 Gbit caps —
// the same side of each link the paper's crossover sits on.
const (
	catalogObjectBytes  = 16 << 10
	catalogHandlerDelay = 2500 * time.Microsecond
	catalogClients      = 6
)

// Catalog returns the named scenarios, bandwidth sweep first.
func Catalog() []Scenario {
	base := Scenario{
		Clients:            catalogClients,
		ObjectBytes:        catalogObjectBytes,
		RequestsPerSession: 20,
		HandlerDelay:       catalogHandlerDelay,
		Warmup:             250 * time.Millisecond,
		Duration:           1500 * time.Millisecond,
	}
	bw := func(name string, mbit float64, desc string) Scenario {
		s := base
		s.Name = name
		s.Description = desc
		s.AggregateBps = experiments.Mbit(mbit) / scale
		s.Delay = 1 * time.Millisecond
		return s
	}
	lossy := base
	lossy.Name = "loss-1pct"
	lossy.Description = "1% segment loss on the scaled 200 Mbit link: retransmission stalls dominate latency"
	lossy.AggregateBps = experiments.Mbit(200) / scale
	lossy.Delay = 2 * time.Millisecond
	lossy.LossProb = 0.01
	lossy.Duration = 1200 * time.Millisecond

	jitter := base
	jitter.Name = "jitter-storm"
	jitter.Description = "10 ms uniform jitter over 2 ms propagation: delivery burstiness without loss"
	jitter.Delay = 2 * time.Millisecond
	jitter.Jitter = 10 * time.Millisecond
	jitter.Duration = 1200 * time.Millisecond

	reorder := base
	reorder.Name = "reorder-burst"
	reorder.Description = "5% straggler segments: head-of-line blocking and reassembly bursts"
	reorder.Delay = 1 * time.Millisecond
	reorder.ReorderProb = 0.05
	reorder.Duration = 1200 * time.Millisecond

	return []Scenario{
		bw("bw-100mbit", 100, "paper Fig 5 left regime at 1/10 scale: throughput tracks the link cap"),
		bw("bw-200mbit", 200, "paper Fig 5 middle point at 1/10 scale: link still the binding resource"),
		bw("bw-1gbit", 1000, "paper Fig 6 regime at 1/10 scale: link uncapped, throughput tracks the CPU"),
		lossy,
		jitter,
		reorder,
	}
}

// ByName looks a scenario up in the catalog.
func ByName(name string) (Scenario, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Object returns the one object every request in the scenario fetches.
func (s Scenario) Object() surge.Object {
	return surge.Object{ID: 0, Size: s.ObjectBytes}
}

// Link returns the per-connection downlink discipline: the aggregate
// link capacity split evenly across the client population.
func (s Scenario) Link() faultline.Link {
	lk := faultline.Link{
		Delay:       s.Delay,
		Jitter:      s.Jitter,
		LossProb:    s.LossProb,
		ReorderProb: s.ReorderProb,
	}
	if s.AggregateBps > 0 {
		lk.RateBytesPerSec = int(s.AggregateBps / float64(s.Clients))
	}
	return lk
}

// Plan returns the faultline Plan applying the scenario's link to every
// connection (responses shaped, requests clean — the request path is
// noise at these object sizes, exactly as in the paper's testbed).
func (s Scenario) Plan() faultline.Plan {
	return faultline.LinkPlan(faultline.Link{}, s.Link())
}

// source is the fixed-object SessionSource: every session is
// RequestsPerSession back-to-back keep-alive requests for /obj/0.
type source struct{ s Scenario }

func (src source) NextSession() surge.Session {
	reqs := make([]surge.Request, src.s.RequestsPerSession)
	for i := range reqs {
		reqs[i] = surge.Request{Object: src.s.Object()}
	}
	return surge.Session{Requests: reqs}
}

// Source returns the scenario's session source factory for loadgen.
func (s Scenario) Source() func(int, *dist.RNG) surge.SessionSource {
	return func(int, *dist.RNG) surge.SessionSource { return source{s} }
}

// Outcome is one live scenario run: what the clients measured and what
// the emulated link did to get them there.
type Outcome struct {
	Load loadgen.Result
	Net  faultline.Stats
}

// GoodputBps returns the measured response-payload rate.
func (o Outcome) GoodputBps() float64 { return o.Load.BandwidthBps }

// Run executes the scenario against a live server at addr: it raises a
// faultline proxy seeded with seed, points loadgen at it, and returns
// both the load result and the link stats. The server must serve
// /obj/0 with exactly ObjectBytes bytes (see MapStoreBody).
func Run(s Scenario, addr string, seed uint64) (Outcome, error) {
	proxy, err := faultline.New(faultline.Config{
		Upstream: addr,
		Seed:     seed,
		Plan:     s.Plan(),
	})
	if err != nil {
		return Outcome{}, err
	}
	defer proxy.Close()

	res, err := loadgen.Run(loadgen.Options{
		Addr:          proxy.Addr(),
		Clients:       s.Clients,
		Warmup:        s.Warmup,
		Duration:      s.Duration,
		Timeout:       10 * time.Second,
		ThinkScale:    0.001,
		Seed:          seed,
		SourceFactory: s.Source(),
	})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Load: res, Net: proxy.Stats()}, nil
}

// Prediction is the simulator's forecast for a scenario.
type Prediction struct {
	RepliesPerSec float64
	BytesPerSec   float64
}

// Drift returns the relative disagreement |live−predicted|/predicted
// for goodput, the calibration number the chaos suite logs.
func (p Prediction) Drift(liveBps float64) float64 {
	if p.BytesPerSec == 0 {
		return 0
	}
	d := (liveBps - p.BytesPerSec) / p.BytesPerSec
	if d < 0 {
		d = -d
	}
	return d
}

// Predict runs the scenario through a discrete-event model of the same
// closed loop: Clients clients issue requests to a FIFO server with
// `concurrency` service units of HandlerDelay each, and responses cross
// a shared simnet link of AggregateBps with the scenario's propagation
// delay. Loss, reorder and jitter enter as their expected per-reply
// serial penalty (segments × prob × penalty — first-order, since a
// stalled segment stalls the TCP stream behind it). This is the same
// machinery as the paper's simulated figures, so live-vs-Predict drift
// is a calibration measurement, not a tautology.
func Predict(s Scenario, concurrency int) Prediction {
	if concurrency <= 0 {
		concurrency = 1
	}
	eng := sim.NewEngine()
	bw := s.AggregateBps
	if bw <= 0 {
		bw = experiments.Mbit(10000) // loopback: effectively unbounded
	}
	link := simnet.NewLink(eng, bw, s.Delay.Seconds())

	// Expected serial penalty per reply from the stochastic faults.
	segments := float64((s.ObjectBytes + 1447) / 1448)
	penalty := segments*(s.LossProb*0.200+s.ReorderProb*0.025) +
		s.Jitter.Seconds()/2

	svc := s.HandlerDelay.Seconds()
	const (
		simWarm    = 2.0
		simMeasure = 10.0
	)
	var (
		busy      int
		queue     []func()
		replies   int64
		bytes     int64
		measuring bool
	)
	eng.At(sim.Time(simWarm), func() { measuring = true })
	eng.At(sim.Time(simWarm+simMeasure), func() { measuring = false })

	var request func()
	finish := func() {
		busy--
		if len(queue) > 0 {
			next := queue[0]
			queue = queue[1:]
			next()
		}
		link.Send(s.ObjectBytes, func() {
			if penalty > 0 {
				eng.Schedule(penalty, func() {
					if measuring {
						replies++
						bytes += s.ObjectBytes
					}
					request()
				})
				return
			}
			if measuring {
				replies++
				bytes += s.ObjectBytes
			}
			request()
		})
	}
	start := func() {
		busy++
		eng.Schedule(svc, finish)
	}
	request = func() {
		if busy < concurrency {
			start()
		} else {
			queue = append(queue, start)
		}
	}
	for i := 0; i < s.Clients; i++ {
		request()
	}
	eng.RunUntil(sim.Time(simWarm + simMeasure + 1))
	return Prediction{
		RepliesPerSec: float64(replies) / simMeasure,
		BytesPerSec:   float64(bytes) / simMeasure,
	}
}
