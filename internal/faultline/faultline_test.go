package faultline

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
)

// echoUpstream runs a TCP echo server for the proxy to front.
func echoUpstream(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

// sinkUpstream accepts connections, reads one byte, then writes resp.
func sinkUpstream(t *testing.T, resp []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				one := make([]byte, 1)
				if _, err := io.ReadFull(c, one); err != nil {
					return
				}
				c.Write(resp)
			}()
		}
	}()
	return ln.Addr().String()
}

func newProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	return c
}

func TestConfigRequiresUpstream(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty upstream accepted")
	}
}

func TestTransparentPassThrough(t *testing.T) {
	p := newProxy(t, Config{Upstream: echoUpstream(t), Plan: Transparent()})
	c := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Conns != 1 || st.BytesUp < int64(len(msg)) || st.BytesDown < int64(len(msg)) {
		t.Fatalf("stats = %+v", st)
	}
	if st.SlowReads+st.Stalls+st.Resets+st.HalfCloses+st.Capped+st.Delayed != 0 {
		t.Fatalf("transparent proxy counted faults: %+v", st)
	}
}

func TestSlowReadDribblesRequestBytes(t *testing.T) {
	// 40 B/s on a 20-byte payload must take >= ~400 ms to arrive.
	p := newProxy(t, Config{Upstream: echoUpstream(t), Plan: Slowloris(40)})
	c := dial(t, p.Addr())
	payload := bytes.Repeat([]byte("x"), 20)
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("20 bytes at 40 B/s arrived in %v; dribble not applied", elapsed)
	}
	if st := p.Stats(); st.SlowReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRSTMidTransfer(t *testing.T) {
	resp := bytes.Repeat([]byte("y"), 256<<10)
	plan := func(int, *dist.RNG) Profile { return Profile{RSTAfterBytes: 1024} }
	p := newProxy(t, Config{Upstream: sinkUpstream(t, resp), Plan: plan})
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("g")); err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, c)
	if err == nil {
		t.Fatalf("read %d bytes with clean EOF; want a reset", n)
	}
	if int64(n) >= int64(len(resp)) {
		t.Fatalf("full response (%d bytes) survived an RST plan", n)
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHalfCloseTruncatesRequest(t *testing.T) {
	// Upstream that reports how many bytes it saw before EOF.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	sawc := make(chan int64, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		n, _ := io.Copy(io.Discard, c)
		sawc <- n
	}()

	plan := func(int, *dist.RNG) Profile { return Profile{HalfCloseAfterBytes: 4} }
	p := newProxy(t, Config{Upstream: ln.Addr().String(), Plan: plan})
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("eightbyt")); err != nil {
		t.Fatal(err)
	}
	select {
	case saw := <-sawc:
		if saw != 4 {
			t.Fatalf("upstream saw %d bytes, want 4 then FIN", saw)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("upstream never saw EOF; half-close not injected")
	}
	if st := p.Stats(); st.HalfCloses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStalledReaderStopsDraining(t *testing.T) {
	resp := bytes.Repeat([]byte("z"), 1<<20)
	plan := func(int, *dist.RNG) Profile { return Profile{StallAfterBytes: 1024} }
	p := newProxy(t, Config{Upstream: sinkUpstream(t, resp), Plan: plan})
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("g")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	n, _ := io.Copy(io.Discard, c) // must time out well short of the full response
	if n >= int64(len(resp)) {
		t.Fatalf("stalled reader still drained all %d bytes", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Stalls == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.Stalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBandwidthCapThrottlesResponse(t *testing.T) {
	resp := bytes.Repeat([]byte("w"), 100)
	plan := func(int, *dist.RNG) Profile { return Profile{DownBytesPerSec: 200} }
	p := newProxy(t, Config{Upstream: sinkUpstream(t, resp), Plan: plan})
	c := dial(t, p.Addr())
	start := time.Now()
	if _, err := c.Write([]byte("g")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(resp))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// 100 bytes at 200 B/s is ~500 ms of dribble.
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("capped response arrived in %v", elapsed)
	}
	if st := p.Stats(); st.Capped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// runMixed pushes n connections through a Mixed plan and returns the
// Delayed count — a proxy-level determinism probe.
func runMixed(t *testing.T, seed uint64, n int) int64 {
	t.Helper()
	plan := Mixed(0.5, Profile{ExtraLatency: time.Millisecond})
	p := newProxy(t, Config{Upstream: echoUpstream(t), Seed: seed, Plan: plan})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(5 * time.Second))
			c.Write([]byte("ping"))
			io.ReadFull(c, make([]byte, 4))
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Conns < int64(n) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	return p.Stats().Delayed
}

func TestMixedPlanIsSeedDeterministic(t *testing.T) {
	a := runMixed(t, 42, 24)
	b := runMixed(t, 42, 24)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d delayed connections", a, b)
	}
	if a == 0 || a == 24 {
		t.Fatalf("mixed plan degenerate: %d/24 delayed", a)
	}
	// A different seed should (for these constants) pick a different mix.
	if c := runMixed(t, 1042, 24); c == a {
		t.Logf("note: seeds 42 and 1042 coincide at %d delayed (allowed)", c)
	}
}
