// link.go is the deterministic link discipline: the per-direction model
// a proxied connection's bytes travel through. It replaces the original
// sleep-per-chunk throttle with the classic shaping pipeline a real
// emulated link (netem, dummynet) applies per packet:
//
//	segmentation → bounded queue (drop-tail) → token-bucket rate →
//	propagation delay + seeded jitter → seeded loss → seeded reordering
//
// The proxy forwards a TCP byte stream, so "loss" and "reordering" are
// modeled the way a client application actually observes them through a
// real lossy link: TCP never delivers corrupted or out-of-order bytes to
// the socket. A lost segment costs its retransmission (the segment and
// everything behind it stall for LossPenalty — the RTO model); a
// reordered segment is a straggler held back for ReorderDelay while
// later segments queue up behind it and then arrive in one burst once
// the straggler lands (head-of-line blocking and the reassembly burst).
// Queue overflow (drop-tail) likewise surfaces as a retransmission
// penalty plus backpressure on the sender.
//
// Determinism contract: every random decision — jitter draw, loss draw,
// reorder draw — for segment k of a connection's direction depends only
// on (Config.Seed, connection index, direction, k). Segments are
// addressed by absolute byte offset (segment k covers stream bytes
// [k·MTU, (k+1)·MTU)), never by read() boundaries, so two runs that
// move the same bytes make byte-identical decisions regardless of
// goroutine or kernel scheduling. Queue overflows are the one
// deliberately load-dependent effect (they depend on how fast the peer
// drains), so they are counted separately and never perturb the
// decision stream.
package faultline

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
)

// Link is one direction's discipline. The zero value is a transparent,
// unshaped direction (no segmentation cost, no randomness consumed).
type Link struct {
	// RateBytesPerSec, when positive, shapes the direction to this rate
	// with a token bucket: bursts up to BurstBytes pass at line rate,
	// sustained transfer is paced exactly.
	RateBytesPerSec int
	// BurstBytes is the token-bucket depth. 0 means a default of
	// max(segment, RateBytesPerSec/20) — 50 ms worth of credit.
	BurstBytes int
	// Delay is the fixed one-way propagation delay applied to every
	// segment. It overlaps with transmission (pipelining): it adds
	// latency, not rate.
	Delay time.Duration
	// Jitter, when positive, adds a seeded uniform extra delay in
	// [0, Jitter) per segment. In-order delivery is preserved (TCP
	// semantics), so jitter surfaces as delivery burstiness.
	Jitter time.Duration
	// LossProb is the per-segment probability that the segment is
	// "lost on the wire" and retransmitted: the segment (and everything
	// behind it) is delayed by LossPenalty.
	LossProb float64
	// LossPenalty is the retransmission stall per lost segment (the RTO
	// model). 0 means 200 ms.
	LossPenalty time.Duration
	// ReorderProb is the per-segment probability the segment straggles:
	// it is held for ReorderDelay while subsequent segments queue behind
	// it, then everything flushes in a burst.
	ReorderProb float64
	// ReorderDelay is the straggler holdback. 0 means 25 ms.
	ReorderDelay time.Duration
	// QueueBytes bounds the link's queue (drop-tail). A segment arriving
	// at a full queue counts an overflow and is retransmitted after
	// LossPenalty (with backpressure on the reader meanwhile). 0 means
	// 256 KiB.
	QueueBytes int
	// MTU is the segment size. 0 means 1448 (Ethernet MSS). Low rates
	// shrink the effective segment to RateBytesPerSec/10 (at least 1)
	// so a 10 B/s link really does dribble a byte at a time.
	MTU int
}

// Default discipline constants.
const (
	defaultMTU          = 1448
	defaultLossPenalty  = 200 * time.Millisecond
	defaultReorderDelay = 25 * time.Millisecond
	defaultQueueBytes   = 256 << 10
	maxQueueSegments    = 4096
)

// active reports whether the direction needs the shaping pipeline at
// all; inactive directions take the transparent fast path.
func (l Link) active() bool {
	return l.RateBytesPerSec > 0 || l.Delay > 0 || l.Jitter > 0 ||
		l.LossProb > 0 || l.ReorderProb > 0
}

// scheduled reports whether the direction needs the asynchronous
// scheduled pipeline: delay, jitter, loss, or reordering can leave work
// pending after the reader has moved on. A pure rate cap never does —
// it paces inline on the reading goroutine (pacer), which preserves the
// original throttle's exact backpressure shape and avoids a writer
// goroutine waking per dribbled byte next to a co-located server.
func (l Link) scheduled() bool {
	return l.Delay > 0 || l.Jitter > 0 || l.LossProb > 0 || l.ReorderProb > 0
}

// segSize returns the effective segment size: MTU, shrunk on slow links
// so pacing stays a dribble rather than burst-and-sleep.
func (l Link) segSize() int {
	mtu := l.MTU
	if mtu <= 0 {
		mtu = defaultMTU
	}
	if l.RateBytesPerSec > 0 {
		if s := l.RateBytesPerSec / 10; s < mtu {
			if s < 1 {
				s = 1
			}
			mtu = s
		}
	}
	return mtu
}

// withDefaults fills the defaulted fields so the pipeline never
// re-derives them.
func (l Link) withDefaults() Link {
	l.MTU = l.segSize()
	if l.BurstBytes <= 0 {
		l.BurstBytes = l.RateBytesPerSec / 20
		if l.BurstBytes < l.MTU {
			l.BurstBytes = l.MTU
		}
	}
	if l.LossPenalty <= 0 {
		l.LossPenalty = defaultLossPenalty
	}
	if l.ReorderDelay <= 0 {
		l.ReorderDelay = defaultReorderDelay
	}
	if l.QueueBytes <= 0 {
		l.QueueBytes = defaultQueueBytes
	}
	return l
}

// Direction selects one side of a proxied connection's discipline.
type Direction int

// The two directions of a proxied connection.
const (
	DirUp   Direction = iota // client → server (requests)
	DirDown                  // server → client (responses)
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == DirUp {
		return "up"
	}
	return "down"
}

// Stream-seed derivation constants: the per-connection seed is split
// into independent streams for the Plan RNG and each direction's
// decider, so adding a draw to one never perturbs the others.
const (
	upStreamSalt   = 0xa11ce5ca1ab1e000
	downStreamSalt = 0x5eedface0fda7a00
)

// StreamSeed derives the decision-stream seed for one direction of the
// conn-th connection of a proxy seeded with seed. Exported so tests can
// replay the exact decision stream a run used.
func StreamSeed(seed uint64, conn int, dir Direction) uint64 {
	s := connSeed(seed, conn)
	if dir == DirUp {
		return s ^ upStreamSalt
	}
	return s ^ downStreamSalt
}

// decision is the seeded per-segment draw: everything random the link
// does to one segment.
type decision struct {
	jitter  time.Duration
	lost    bool
	reorder bool
}

// extra returns the scheduled delay the decision injects beyond the
// fixed propagation delay.
func (d decision) extra(l Link) time.Duration {
	e := d.jitter
	if d.lost {
		e += l.LossPenalty
	}
	if d.reorder {
		e += l.ReorderDelay
	}
	return e
}

// decider draws the per-segment decision stream. Exactly three uniform
// draws per segment, always, so the stream stays aligned across Link
// configurations that differ only in probabilities.
type decider struct {
	cfg Link
	rng *dist.RNG
}

func newDecider(cfg Link, streamSeed uint64) *decider {
	return &decider{cfg: cfg, rng: dist.NewRNG(streamSeed)}
}

func (d *decider) next() decision {
	uJitter := d.rng.Float64()
	uLoss := d.rng.Float64()
	uReorder := d.rng.Float64()
	var dec decision
	if d.cfg.Jitter > 0 {
		dec.jitter = time.Duration(uJitter * float64(d.cfg.Jitter))
	}
	dec.lost = uLoss < d.cfg.LossProb
	dec.reorder = uReorder < d.cfg.ReorderProb
	return dec
}

// DecisionTrace renders the first n per-segment decisions of the
// decision stream for (cfg, streamSeed) — one line per segment. This is
// the determinism contract made concrete: two traces for the same
// inputs are byte-identical, and the chaos suite asserts exactly that.
func DecisionTrace(cfg Link, streamSeed uint64, n int) string {
	d := newDecider(cfg.withDefaults(), streamSeed)
	var b strings.Builder
	for i := 0; i < n; i++ {
		dec := d.next()
		fmt.Fprintf(&b, "seg=%d jitter=%dns lost=%t reorder=%t\n",
			i, dec.jitter.Nanoseconds(), dec.lost, dec.reorder)
	}
	return b.String()
}

// LinkStats is one direction's aggregate shaping counters across every
// connection the proxy carried.
type LinkStats struct {
	Segments  int64 // segments that entered the discipline
	Bytes     int64 // payload bytes forwarded
	Lost      int64 // segments hit by the seeded loss draw
	Reordered int64 // segments hit by the seeded reorder draw
	Overflows int64 // drop-tail queue overflows (load-dependent)
	// DelayInjected is the sum of scheduled extra delay: fixed Delay per
	// segment plus jitter, loss and reorder penalties. It is computed
	// from the decision stream, so it is deterministic for a fixed byte
	// count; overflow penalties are deliberately excluded.
	DelayInjected time.Duration
}

// String renders the stats in a stable single-line format for test logs
// and golden assertions.
func (s LinkStats) String() string {
	return fmt.Sprintf("segs=%d bytes=%d lost=%d reordered=%d overflows=%d delay=%s",
		s.Segments, s.Bytes, s.Lost, s.Reordered, s.Overflows, s.DelayInjected)
}

// linkCounters aggregates one direction's shaping activity across
// connections (all atomic).
type linkCounters struct {
	segments  metrics.Counter
	lost      metrics.Counter
	reordered metrics.Counter
	overflows metrics.Counter
	delayNs   metrics.Counter
}

func (lc *linkCounters) snapshot(bytes int64) LinkStats {
	return LinkStats{
		Segments:      lc.segments.Value(),
		Bytes:         bytes,
		Lost:          lc.lost.Value(),
		Reordered:     lc.reordered.Value(),
		Overflows:     lc.overflows.Value(),
		DelayInjected: time.Duration(lc.delayNs.Value()),
	}
}

// frag is one queued piece of the byte stream, at most one segment
// long. A fragment that begins a new segment carries that segment's
// decision; continuation fragments inherit in-order delivery.
type frag struct {
	data []byte
	dec  *decision
	// at is when the fragment entered the link (was read off the wire).
	// Transmission and propagation are scheduled from this instant so
	// delay pipelines instead of serializing per fragment.
	at time.Time
	// overflow marks a fragment that hit a full queue: the writer adds
	// the drop-tail retransmission penalty.
	overflow bool
}

// feeder is the reader half of one direction's pipeline: it slices the
// byte stream into segment-addressed fragments, draws each segment's
// decision, and enqueues with drop-tail accounting.
type feeder struct {
	p      *Proxy
	lk     Link
	dec    *decider
	ch     chan frag
	offset int64 // absolute stream offset
	lc     *linkCounters
}

func newFeeder(p *Proxy, lk Link, streamSeed uint64, lc *linkCounters) *feeder {
	lk = lk.withDefaults()
	capSegs := lk.QueueBytes / lk.MTU
	if capSegs < 1 {
		capSegs = 1
	}
	if capSegs > maxQueueSegments {
		capSegs = maxQueueSegments
	}
	return &feeder{
		p:   p,
		lk:  lk,
		dec: newDecider(lk, streamSeed),
		ch:  make(chan frag, capSegs),
		lc:  lc,
	}
}

// feed forwards chunk through the pipeline. It blocks under
// backpressure and returns false when the proxy is shutting down.
func (f *feeder) feed(chunk []byte) bool {
	seg := int64(f.lk.MTU)
	for len(chunk) > 0 {
		// The fragment runs to the end of the current segment.
		room := seg - f.offset%seg
		n := int64(len(chunk))
		if n > room {
			n = room
		}
		fr := frag{data: append([]byte(nil), chunk[:n]...), at: time.Now()}
		if f.offset%seg == 0 {
			d := f.dec.next()
			fr.dec = &d
			f.lc.segments.Inc()
			if d.lost {
				f.lc.lost.Inc()
			}
			if d.reorder {
				f.lc.reordered.Inc()
			}
			f.lc.delayNs.Add(int64(f.lk.Delay + d.extra(f.lk)))
		}
		if !f.enqueue(fr) {
			return false
		}
		f.offset += n
		chunk = chunk[n:]
	}
	return true
}

// enqueue performs the drop-tail admission: a fragment meeting a full
// queue is counted as an overflow, charged the retransmission penalty,
// and re-offered with backpressure.
func (f *feeder) enqueue(fr frag) bool {
	select {
	case f.ch <- fr:
		return true
	default:
	}
	f.lc.overflows.Inc()
	fr.overflow = true
	if !f.p.sleep(f.lk.LossPenalty) {
		return false
	}
	select {
	case f.ch <- fr:
		return true
	case <-f.p.stop:
		return false
	}
}

// close ends the stream; the writer flushes what is queued and then
// forwards the FIN.
func (f *feeder) close() { close(f.ch) }

// pacer is the synchronous shaping path for a rate-only link: with no
// delay, jitter, loss, or reordering to schedule, nothing is ever
// pending after a write completes, so the virtual transmission clock
// runs inline on the reading goroutine. Pacing slices are ~1/10 s of
// rate (at least one byte), so a 10 B/s link really does dribble a byte
// at a time while a fast cap sleeps only a few times a second.
type pacer struct {
	p        *Proxy
	rate     int
	slice    int
	burstDur time.Duration
	txAt     time.Time
	lc       *linkCounters
}

func newPacer(p *Proxy, lk Link, lc *linkCounters) *pacer {
	lk = lk.withDefaults()
	slice := lk.RateBytesPerSec / 10
	if slice < 1 {
		slice = 1
	}
	return &pacer{
		p:        p,
		rate:     lk.RateBytesPerSec,
		slice:    slice,
		burstDur: time.Duration(float64(lk.BurstBytes) / float64(lk.RateBytesPerSec) * float64(time.Second)),
		lc:       lc,
	}
}

// send forwards chunk to dst at the configured rate, slice by slice on
// the token-bucket clock. It reports false when the proxy is shutting
// down or the peer is gone.
func (pc *pacer) send(dst writeConn, chunk []byte, bytes *metrics.Counter) bool {
	for len(chunk) > 0 {
		n := pc.slice
		if n > len(chunk) {
			n = len(chunk)
		}
		// Same virtual clock as linkWriter: idle credit accrues up to the
		// bucket depth, then bytes pace at the configured rate.
		now := time.Now()
		if lo := now.Add(-pc.burstDur); pc.txAt.Before(lo) {
			pc.txAt = lo
		}
		pc.txAt = pc.txAt.Add(time.Duration(float64(n) / float64(pc.rate) * float64(time.Second)))
		if !pc.p.sleepUntil(pc.txAt) {
			return false
		}
		wn, err := dst.Write(chunk[:n])
		bytes.Add(int64(wn))
		pc.lc.segments.Inc()
		if err != nil {
			return false
		}
		chunk = chunk[n:]
	}
	return true
}

// linkWriter is the writer half: it drains the queue, schedules each
// fragment on the virtual transmission clock (token bucket), applies
// propagation delay plus the segment's decision, enforces in-order
// delivery, and writes to dst. fin, when non-nil, runs after a clean
// end-of-stream flush (forwarding the FIN).
func (p *Proxy) linkWriter(dst writeConn, lk Link, ch <-chan frag, bytes *metrics.Counter, fin func()) {
	lk = lk.withDefaults()
	var burstDur time.Duration
	if lk.RateBytesPerSec > 0 {
		burstDur = time.Duration(float64(lk.BurstBytes) / float64(lk.RateBytesPerSec) * float64(time.Second))
	}
	var txAt, floor time.Time
	failed := false
	for fr := range ch {
		if failed {
			continue // keep draining so the feeder never wedges
		}
		// Schedule from the fragment's arrival on the link, not from
		// when this goroutine got to it: that is what makes propagation
		// delay pipeline rather than serialize.
		arrived := fr.at
		sendDone := arrived
		if lk.RateBytesPerSec > 0 {
			// Virtual transmission clock: idle credit accrues up to the
			// bucket depth, then bytes pace at the configured rate.
			if lo := arrived.Add(-burstDur); txAt.Before(lo) {
				txAt = lo
			}
			txAt = txAt.Add(time.Duration(float64(len(fr.data)) / float64(lk.RateBytesPerSec) * float64(time.Second)))
			if sendDone = txAt; sendDone.Before(arrived) {
				sendDone = arrived
			}
		}
		deliverAt := sendDone.Add(lk.Delay)
		if fr.dec != nil {
			deliverAt = deliverAt.Add(fr.dec.extra(lk))
		}
		if fr.overflow {
			deliverAt = deliverAt.Add(lk.LossPenalty)
		}
		// In-order delivery: a straggler blocks everything behind it,
		// which then flushes as a burst — TCP reassembly as the client
		// sees it.
		if deliverAt.Before(floor) {
			deliverAt = floor
		}
		if !p.sleepUntil(deliverAt) {
			failed = true
			continue
		}
		if _, err := dst.Write(fr.data); err != nil {
			failed = true
			continue
		}
		bytes.Add(int64(len(fr.data)))
		floor = deliverAt
	}
	if !failed && fin != nil {
		fin()
	}
}

// writeConn is the slice of net.Conn the writer needs (real conns in
// production, byte sinks in tests).
type writeConn interface {
	Write([]byte) (int, error)
}

// sleepUntil waits for wall-clock t or proxy shutdown; it reports false
// when the proxy is closing.
func (p *Proxy) sleepUntil(t time.Time) bool {
	return p.sleep(time.Until(t))
}
