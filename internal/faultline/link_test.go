package faultline

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// lossyLink is the canonical degraded-link fixture used across the
// determinism tests.
func lossyLink() Link {
	return Link{
		RateBytesPerSec: 64 << 10,
		Delay:           2 * time.Millisecond,
		Jitter:          3 * time.Millisecond,
		LossProb:        0.05,
		LossPenalty:     10 * time.Millisecond,
		ReorderProb:     0.10,
		ReorderDelay:    5 * time.Millisecond,
	}
}

// The determinism contract, stated directly: the same (Seed, conn,
// direction) replays a byte-identical decision stream; a different seed
// does not.
func TestDecisionTraceDeterministic(t *testing.T) {
	cfg := lossyLink()
	a := DecisionTrace(cfg, StreamSeed(42, 3, DirDown), 500)
	b := DecisionTrace(cfg, StreamSeed(42, 3, DirDown), 500)
	if a != b {
		t.Fatalf("same seed produced different decision traces")
	}
	if c := DecisionTrace(cfg, StreamSeed(43, 3, DirDown), 500); c == a {
		t.Fatalf("different seed produced identical decision trace")
	}
	if d := DecisionTrace(cfg, StreamSeed(42, 3, DirUp), 500); d == a {
		t.Fatalf("different direction produced identical decision trace")
	}
	// Non-degenerate: with LossProb=0.05 and ReorderProb=0.10 over 500
	// segments, both faults must actually fire.
	if !strings.Contains(a, "lost=true") || !strings.Contains(a, "reorder=true") {
		t.Fatalf("trace never fired loss/reorder:\n%s", a[:200])
	}
}

// Probabilities only threshold the uniform draws — the underlying
// stream is shared, so changing LossProb must not shift jitter values.
func TestDecisionStreamAlignedAcrossConfigs(t *testing.T) {
	base := lossyLink()
	bumped := base
	bumped.LossProb = 0.5

	seed := StreamSeed(7, 0, DirDown)
	a := DecisionTrace(base, seed, 200)
	b := DecisionTrace(bumped, seed, 200)

	extract := func(trace string) []string {
		var js []string
		for _, line := range strings.Split(strings.TrimSpace(trace), "\n") {
			for _, f := range strings.Fields(line) {
				if strings.HasPrefix(f, "jitter=") {
					js = append(js, f)
				}
			}
		}
		return js
	}
	ja, jb := extract(a), extract(b)
	if len(ja) != 200 || len(jb) != 200 {
		t.Fatalf("expected 200 jitter entries, got %d and %d", len(ja), len(jb))
	}
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("jitter stream diverged at segment %d: %s vs %s", i, ja[i], jb[i])
		}
	}
}

func TestLinkStatsStringGolden(t *testing.T) {
	s := LinkStats{
		Segments:      12,
		Bytes:         17376,
		Lost:          1,
		Reordered:     2,
		Overflows:     0,
		DelayInjected: 250 * time.Millisecond,
	}
	const want = "segs=12 bytes=17376 lost=1 reordered=2 overflows=0 delay=250ms"
	if got := s.String(); got != want {
		t.Fatalf("LinkStats.String golden mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestStatsStringIsStable(t *testing.T) {
	s := Stats{Conns: 3, SlowReads: 1, BytesDown: 4096,
		Down: LinkStats{Segments: 4, Bytes: 4096}}
	got := s.String()
	want := "conns=3 slowreads=1 stalls=0 resets=0 halfcloses=0 capped=0 delayed=0 lossy=0 reordering=0\n" +
		"up:   segs=0 bytes=0 lost=0 reordered=0 overflows=0 delay=0s\n" +
		"down: segs=4 bytes=4096 lost=0 reordered=0 overflows=0 delay=0s"
	if got != want {
		t.Fatalf("Stats.String golden mismatch:\n got %q\nwant %q", got, want)
	}
}

// Token-bucket pacing: a transfer well past the burst must take about
// bytes/rate, and the initial burst must pass at line rate.
func TestTokenBucketPacesSustainedTransfer(t *testing.T) {
	const rate = 100 << 10 // 100 KiB/s
	const total = 50 << 10 // 0.5 s nominal

	upstream := newByteSink(t, total)
	defer upstream.close()

	p, err := New(Config{
		Upstream: upstream.addr(),
		Seed:     1,
		Plan: LinkPlan(Link{RateBytesPerSec: rate, BurstBytes: 4 << 10},
			Link{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	upstream.waitDone(t, 5*time.Second)
	elapsed := time.Since(start)

	// 50 KiB at 100 KiB/s with a 4 KiB burst: nominal 460 ms of pacing.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("transfer too fast for token bucket: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("transfer too slow: %v", elapsed)
	}

	st := p.Stats()
	if st.Up.Segments == 0 || st.Up.Bytes != total {
		t.Fatalf("up link stats wrong: %s", st.Up)
	}
}

// Propagation delay must pipeline: 40 segments through a 50 ms link
// must take ~50 ms, not 40·50 ms.
func TestPropagationDelayPipelines(t *testing.T) {
	const total = 40 * 1448

	upstream := newByteSink(t, total)
	defer upstream.close()

	p, err := New(Config{
		Upstream: upstream.addr(),
		Seed:     1,
		Plan:     LinkPlan(Link{Delay: 50 * time.Millisecond}, Link{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	upstream.waitBytes(t, total, 5*time.Second)
	elapsed := time.Since(start)

	if elapsed < 45*time.Millisecond {
		t.Fatalf("propagation delay not applied: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("delay serialized instead of pipelined: %v (want ~50ms)", elapsed)
	}
}

// The stream must arrive intact — byte-for-byte — through the full
// lossy/jittery/reordering discipline, because TCP semantics survive a
// degraded link even when timing does not.
func TestDisciplinePreservesByteStream(t *testing.T) {
	payload := make([]byte, 96<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	upstream := newByteSink(t, len(payload))
	defer upstream.close()

	lk := lossyLink()
	lk.RateBytesPerSec = 1 << 20
	p, err := New(Config{Upstream: upstream.addr(), Seed: 99, Plan: LinkPlan(lk, Link{})})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	upstream.waitDone(t, 10*time.Second)

	if !bytes.Equal(upstream.bytes(), payload) {
		t.Fatalf("byte stream corrupted through discipline")
	}
	st := p.Stats()
	if st.Up.Lost == 0 && st.Up.Reordered == 0 {
		t.Fatalf("discipline never fired on %d segments: %s", st.Up.Segments, st.Up)
	}
	if st.LossyConns != 1 || st.ReorderConns != 1 {
		t.Fatalf("classification counters wrong: %s", st)
	}
}

// End-to-end determinism: two fresh proxies with the same seed moving
// the same bytes must produce identical deterministic link stats
// (overflows are load-dependent and excluded by construction: the queue
// is large enough here never to overflow).
func TestLinkStatsDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		payload := make([]byte, 64<<10)
		upstream := newByteSink(t, len(payload))
		defer upstream.close()

		lk := lossyLink()
		lk.RateBytesPerSec = 2 << 20
		p, err := New(Config{Upstream: upstream.addr(), Seed: 1234, Plan: LinkPlan(lk, Link{})})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		upstream.waitDone(t, 10*time.Second)
		st := p.Stats().Up
		return fmt.Sprintf("segs=%d bytes=%d lost=%d reordered=%d delay=%s",
			st.Segments, st.Bytes, st.Lost, st.Reordered, st.DelayInjected)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, same bytes, different link stats:\n run1 %s\n run2 %s", a, b)
	}
}

// Legacy shorthand fields must normalize onto the new discipline.
func TestLegacyProfileFieldsNormalize(t *testing.T) {
	prof := Profile{
		UpBytesPerSec:   100,
		DownBytesPerSec: 200,
		ExtraLatency:    5 * time.Millisecond,
	}.normalized()
	if prof.Up.RateBytesPerSec != 100 || prof.Down.RateBytesPerSec != 200 {
		t.Fatalf("rates not normalized: %+v", prof)
	}
	if prof.Up.Delay != 5*time.Millisecond || prof.Down.Delay != 5*time.Millisecond {
		t.Fatalf("latency not normalized: %+v", prof)
	}
}

// ---------------------------------------------------------------------
// byteSink: a TCP listener that accepts one connection and records what
// arrives.
// ---------------------------------------------------------------------

type byteSink struct {
	ln   net.Listener
	mu   chan struct{} // closed when EOF reached
	got  *bytes.Buffer
	lock chan struct{} // 1-token mutex for got
	want int
}

func newByteSink(t *testing.T, want int) *byteSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &byteSink{ln: ln, mu: make(chan struct{}), got: &bytes.Buffer{},
		lock: make(chan struct{}, 1), want: want}
	s.lock <- struct{}{}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				<-s.lock
				s.got.Write(buf[:n])
				s.lock <- struct{}{}
			}
			if err != nil {
				close(s.mu)
				return
			}
			if s.len() >= s.want {
				close(s.mu)
				io.Copy(io.Discard, c)
				return
			}
		}
	}()
	return s
}

func (s *byteSink) addr() string { return s.ln.Addr().String() }
func (s *byteSink) close()       { s.ln.Close() }

func (s *byteSink) len() int {
	<-s.lock
	n := s.got.Len()
	s.lock <- struct{}{}
	return n
}

func (s *byteSink) bytes() []byte {
	<-s.lock
	b := append([]byte(nil), s.got.Bytes()...)
	s.lock <- struct{}{}
	return b
}

func (s *byteSink) waitDone(t *testing.T, d time.Duration) {
	t.Helper()
	select {
	case <-s.mu:
	case <-time.After(d):
		t.Fatalf("byteSink: timed out after %v with %d/%d bytes", d, s.len(), s.want)
	}
}

func (s *byteSink) waitBytes(t *testing.T, n int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for s.len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("byteSink: %d/%d bytes after %v", s.len(), n, d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
