//go:build linux

package repro

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Model-based conformance suite for the connection lifecycle. The
// server's observable behavior per connection is specified as an
// explicit state machine over the obs event vocabulary — the modeled
// grammar of accept → read → parse → respond → (keepalive | close),
// with shed as the zero-conn refusal outside the lifecycle — and the
// trace ring is required to emit exactly sequences that machine
// accepts, for every connection, on every shard configuration
// (legacy fan-out, 1 reuseport shard, 4 reuseport shards).
//
// The model is deliberately strict: it encodes not just which events
// exist but which may follow which. A shard that reordered a parse
// before its header read, double-closed a connection, leaked a
// connection without a close, or recorded first-byte twice would be
// rejected, as would any event sequence the table does not license.

// lifecycleStart is the synthetic pre-accept state.
const lifecycleStart = obs.Kind(obs.NumKinds)

// lifecycleModel is the transition table: for each state (the last
// event recorded for the connection), the set of events that may
// legally follow. Absence means the transition is a conformance
// violation. obs.Close is terminal: no successors.
var lifecycleModel = map[obs.Kind][]obs.Kind{
	// A connection enters the system by being accepted, then records
	// its queue wait when a shard's loop picks it up.
	lifecycleStart: {obs.Accept},
	obs.Accept:     {obs.QueueWait},
	// From idle, either request bytes arrive or the peer goes away.
	obs.QueueWait: {obs.HeaderRead, obs.Close},
	// After first bytes: a complete request parses, or the bytes are
	// unparseable and the 400 goes straight out (first-byte with no
	// parse), or the peer closes mid-request.
	obs.HeaderRead: {obs.Parse, obs.FirstByte, obs.Close},
	// A parsed request is served or its handler panics — serving is
	// synchronous on the loop, so nothing else can intervene.
	obs.Parse: {obs.Handler, obs.Panic},
	// After a serve: the next pipelined request in the same batch, the
	// response's first byte (first response on the connection), or the
	// batch's write completion (first-byte already recorded earlier).
	obs.Handler: {obs.Parse, obs.FirstByte, obs.WriteComplete},
	// The isolated panic's 500 flushes like any response: first-byte if
	// none was recorded yet, write completion if an earlier request in
	// the batch set the serve clock, else straight to the close.
	obs.Panic: {obs.FirstByte, obs.WriteComplete, obs.Close},
	// First byte precedes the batch's write completion; a response with
	// no completed serve (bad request's 400, lone panic's 500) closes.
	obs.FirstByte: {obs.WriteComplete, obs.Close},
	// After a flushed batch: the next keep-alive request or teardown.
	obs.WriteComplete: {obs.HeaderRead, obs.Close},
	obs.Close:         {},
}

// lifecycleEdge names one transition for coverage bookkeeping.
func lifecycleEdge(from, to obs.Kind) string {
	f := "start"
	if from != lifecycleStart {
		f = from.String()
	}
	return f + "->" + to.String()
}

func TestLifecycleConformance(t *testing.T) {
	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"fanout", func(c *core.Config) { c.Shards = 0; c.Workers = 2 }},
		{"shards=1", func(c *core.Config) { c.Shards = 1 }},
		{"shards=4", func(c *core.Config) { c.Shards = 4 }},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) { lifecycleConformance(t, tc.mutate) })
	}
}

func lifecycleConformance(t *testing.T, mutate func(*core.Config)) {
	store := core.MapStore{
		"/a.txt": []byte("alpha"),
		"/b.txt": []byte("bravo-bravo"),
	}
	plane := obs.NewPlane(1 << 12)
	cfg := core.DefaultConfig(store)
	cfg.Obs = plane
	cfg.MaxConns = 2
	cfg.HandlerFault = func(path string) core.Fault {
		if path == "/panic" {
			return core.Fault{Panic: true}
		}
		return core.Fault{}
	}
	mutate(&cfg)
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(10 * time.Second))
		return c
	}
	request := func(path, connection string) string {
		return fmt.Sprintf("GET %s HTTP/1.1\r\nHost: sut\r\nConnection: %s\r\n\r\n", path, connection)
	}
	readResp := func(br *bufio.Reader, wantStatus int) {
		t.Helper()
		resp, err := http.ReadResponse(br, nil)
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
	}

	// Scenario 1 — plain: one request, server-initiated close.
	// Modeled: accept qw hr parse handler fb wc close.
	c := dial()
	io.WriteString(c, request("/a.txt", "close"))
	readResp(bufio.NewReader(c), 200)
	c.Close()

	// Scenario 2 — keep-alive: two sequential requests, client close.
	// Covers wc->hr (the keepalive loop) and handler->wc (second
	// response on an already-observed connection).
	c = dial()
	br := bufio.NewReader(c)
	io.WriteString(c, request("/a.txt", "keep-alive"))
	readResp(br, 200)
	io.WriteString(c, request("/b.txt", "keep-alive"))
	readResp(br, 200)
	c.Close()

	// Scenario 3 — pipelined: two requests in one write. Covers
	// handler->parse (back-to-back serves inside one read batch).
	c = dial()
	br = bufio.NewReader(c)
	io.WriteString(c, request("/a.txt", "keep-alive")+request("/b.txt", "keep-alive"))
	readResp(br, 200)
	readResp(br, 200)
	c.Close()

	// Scenario 4 — unparseable bytes: the 400 goes out with no parse
	// event. Covers hr->fb and fb->close.
	c = dial()
	io.WriteString(c, "\x00\x01 utterly not http\r\n\r\n")
	readResp(bufio.NewReader(c), 400)
	c.Close()

	// Scenario 5 — no request at all: connect, close. Covers qw->close.
	c = dial()
	c.Close()

	// Scenario 6 — partial header then close: first bytes arrive but no
	// complete request ever does. Covers hr->close.
	c = dial()
	io.WriteString(c, "GET /a.txt HT")
	time.Sleep(50 * time.Millisecond) // let the shard record the header read
	c.Close()

	// Scenario 7 — panic on the first request: the isolated 500 is the
	// connection's first response. Covers parse->panic and panic->fb.
	c = dial()
	io.WriteString(c, request("/panic", "keep-alive"))
	readResp(bufio.NewReader(c), 500)
	c.Close()

	// Scenario 8 — keep-alive then a lone panic: the 500 batch has no
	// completed serve and first-byte is already recorded, so the panic
	// goes straight to close. Covers panic->close.
	c = dial()
	br = bufio.NewReader(c)
	io.WriteString(c, request("/a.txt", "keep-alive"))
	readResp(br, 200)
	io.WriteString(c, request("/panic", "keep-alive"))
	readResp(br, 500)
	c.Close()

	// Scenario 9 — keep-alive then pipelined good+panic: the panic
	// batch contains a completed serve, so its flush records a write
	// completion. Covers panic->wc.
	c = dial()
	br = bufio.NewReader(c)
	io.WriteString(c, request("/a.txt", "keep-alive"))
	readResp(br, 200)
	io.WriteString(c, request("/b.txt", "keep-alive")+request("/panic", "keep-alive"))
	readResp(br, 200)
	readResp(br, 500)
	c.Close()

	// Scenario 10 — shed: fill MaxConns with two held connections, then
	// require further arrivals to be refused with a 503 and a conn-0
	// shed event that never enters the lifecycle.
	holdA, holdB := dial(), dial()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ConnsOpen < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("held connections not adopted: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		sc := dial()
		io.WriteString(sc, request("/a.txt", "close"))
		raw, _ := io.ReadAll(sc)
		sc.Close()
		if !strings.HasPrefix(string(raw), "HTTP/1.1 503 ") {
			t.Fatalf("over-capacity connection %d not shed: %q", i, raw)
		}
	}
	holdA.Close()
	holdB.Close()

	// Every opened connection must reach its terminal close before the
	// verdict is read — 11 connections entered the lifecycle (the shed
	// ones never do).
	const wantConns = 11
	deadline = time.Now().Add(5 * time.Second)
	for {
		closed := make(map[uint64]bool)
		for _, ev := range plane.Ring().Events() {
			if ev.Kind == obs.Close && ev.Conn != 0 {
				closed[ev.Conn] = true
			}
		}
		if len(closed) >= wantConns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d connections closed", len(closed), wantConns)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Stop()

	if d := plane.Ring().Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events; the conformance verdict needs all of them", d)
	}

	// Replay the ring through the model: every connection's event
	// sequence must be accepted, and the run must exercise every edge
	// the model declares.
	events := plane.Ring().Events()
	state := make(map[uint64]obs.Kind)
	covered := make(map[string]bool)
	sheds := 0
	for _, ev := range events {
		if ev.Kind == obs.Shed {
			if ev.Conn != 0 {
				t.Fatalf("shed event carries conn %d; sheds never enter the lifecycle", ev.Conn)
			}
			sheds++
			continue
		}
		if ev.Conn == 0 {
			t.Fatalf("lifecycle event %v with no connection id", ev.Kind)
		}
		cur, seen := state[ev.Conn]
		if !seen {
			cur = lifecycleStart
		}
		legal := false
		for _, next := range lifecycleModel[cur] {
			if next == ev.Kind {
				legal = true
				break
			}
		}
		if !legal {
			t.Fatalf("conn %d: illegal transition %s (modeled successors of %v: %v)",
				ev.Conn, lifecycleEdge(cur, ev.Kind), cur, lifecycleModel[cur])
		}
		covered[lifecycleEdge(cur, ev.Kind)] = true
		state[ev.Conn] = ev.Kind
	}
	if sheds < 3 {
		t.Fatalf("observed %d shed events, drove 3", sheds)
	}
	if len(state) != wantConns {
		t.Fatalf("ring shows %d connections, drove %d", len(state), wantConns)
	}
	for conn, last := range state {
		if last != obs.Close {
			t.Fatalf("conn %d ended in non-terminal state %v", conn, last)
		}
	}
	for from, nexts := range lifecycleModel {
		for _, to := range nexts {
			if e := lifecycleEdge(from, to); !covered[e] {
				t.Fatalf("modeled transition %s never exercised — the suite no longer covers the table", e)
			}
		}
	}
}
