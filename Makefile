# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-full race bench bench-json bench-check figures figures-fast demo-overload obs-demo chaos chaos-demo proxy-demo proxy-test sysfault sysfault-demo lint invariants verify clean

all: build test

build:
	go build ./...
	go vet ./...

# Unit tests only (integration-scale experiment sweeps skipped).
test:
	go test -short ./...

# Everything, including the figure-shape integration tests (~2 min).
test-full:
	go test ./...

# Unit tests under the race detector (what CI runs).
race:
	go test -race -short ./...

# One iteration of every benchmark, including the per-figure harness.
bench:
	go test -bench=. -benchmem -benchtime=1x ./...

# The recorded perf trajectory (ROADMAP item 3): the same bench run,
# converted to machine-readable BENCH_<date>.json and committed, so the
# hot-path work has a baseline to diff against.
bench-json:
	go test -bench=. -benchmem -benchtime=1x ./... | go run ./cmd/benchjson -out BENCH_$$(date +%F).json

# The perf regression gate: rerun the bench suite and diff it against
# the newest committed BENCH_*.json. Fails if replies/s fell or p99-ms
# rose by more than 15% on any benchmark present in both runs; on a
# machine with a different CPU than the baseline it reports and skips.
bench-check:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -1); \
	if [ -z "$$base" ]; then echo "no committed BENCH_*.json baseline; run make bench-json first" >&2; exit 1; fi; \
	echo "baseline: $$base"; \
	go test -bench=. -benchmem -benchtime=1x ./... | go run ./cmd/benchjson -check $$base

# Regenerate every paper figure at full scale (several minutes).
figures:
	go run ./cmd/expsim | tee expsim_full.txt

figures-fast:
	go run ./cmd/expsim -fast

# Live showcase of adaptive overload control, panic isolation, and the
# stall watchdog (~15 s).
demo-overload:
	go run ./examples/overload

# Live showcase of the observability plane: phase-latency decomposition
# and per-connection trace of the nio server under load (~3 s).
obs-demo:
	go run ./examples/obs

# The scripted chaos suite under the race detector: bandwidth-sweep
# regime split, fault-scenario survival, link determinism, conditional
# requests through a lossy link (~40 s). Set CHAOS_SEED to vary the
# emulated link's seed.
chaos:
	go test -race -v -run 'TestChaos' .

# Live bandwidth sweep table: both servers behind the emulated link,
# measured goodput vs discrete-event prediction (~12 s).
chaos-demo:
	go run ./examples/chaos

# Live showcase of the serving tier: nioproxy balancing both server
# architectures under load, with a mid-ramp backend kill, ejection,
# revival, and the tier-merged telemetry rollup (~6 s).
proxy-demo:
	go run ./examples/proxy

# The serving-tier suite under the race detector: proxy unit tests,
# rollup merge/scrape tests, and the end-to-end parity/failover/shed
# integration tests.
proxy-test:
	go test -race -count=1 ./internal/proxy/ ./internal/obs/rollup/
	go test -race -count=1 -run 'TestProxy' .

# The deterministic fault-injection suite under the race detector:
# seeded EMFILE/ENOBUFS/short-write/sendfile/connect faults against
# both servers and the proxy tier, with offline-replay determinism
# checks (~5 s). Set SYSFAULT_SEED to vary the injection seed.
sysfault:
	go test -race -count=1 -v -run 'TestSysfault' .
	go test -race -count=1 ./internal/sysfault/

# Live showcase of the fault seam: the nio server under a mixed
# injection plan, hardening counters vs the fired-decision log, and
# the byte-identical offline replay (~1 s; pass a seed as the arg).
sysfault-demo:
	go run ./examples/sysfault

# Formatting, standard vet, and the custom analyzer suite (cmd/niovet):
# syscallerr, fdlife, refbalance, statssync, nonblock, plus the
# call-graph discipline analyzers loopown, loopblock, hotalloc, detrand.
lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed on:" >&2; echo "$$fmt" >&2; exit 1; fi
	go vet ./...
	go run ./cmd/niovet ./...

# Unit tests with the runtime invariant layer compiled in (refcounts,
# epoll interest set, closed-conn guards) under the race detector.
invariants:
	go test -tags invariants -race -short ./...

# The full local gate: build, unit tests, invariant-enabled tests, lint.
verify: build test invariants lint

clean:
	go clean ./...
