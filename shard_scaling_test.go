//go:build linux

package repro

import (
	"bufio"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simcpu"
)

// TestShardScalingMatchesSimcpu is the live half of the sharding
// claim: a 1/2/4-shard sweep of the reactor under a CPU-burning
// handler, cross-checked against internal/simcpu's P-processor
// processor-sharing prediction. The handler spins (Fault.Spin) rather
// than sleeps, so reply rate is honestly bounded by real CPUs — a
// sleeping handler overlaps arbitrarily on one core and would "scale"
// on any machine.
//
// The model predicts throughput n/S for n shards (each shard is one
// single-threaded loop burning S per request, exactly one processor
// in simcpu's terms), so the normalized 1→n scaling factor predicts
// as n. The live factor must track the prediction within 40% drift —
// generous enough for client-side CPU theft and imperfect reuseport
// conn spreading, tight enough that a serialized accept path, a
// shared lock on the hot path, or shards pinned to one core would
// fail it — and the 1→4 factor must reach at least 2.5x.
//
// GOMAXPROCS is pinned to NumCPU for the whole sweep so the machine
// under test is constant while only the shard count varies. The test
// self-skips where the measurement cannot be honest: fewer than 4
// CPUs (the 4-shard run would time-slice, measuring the scheduler,
// not the architecture), race builds (~10x instrumentation skew), and
// -short runs.
func TestShardScalingMatchesSimcpu(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts CPU-bound throughput")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("shard sweep needs >= 4 CPUs to mean anything, have %d", runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)

	const spin = time.Millisecond
	const window = 2 * time.Second
	shardCounts := []int{1, 2, 4}

	measured := make(map[int]float64)
	for _, n := range shardCounts {
		x := measureShardThroughput(t, n, spin, window)
		measured[n] = x
		t.Logf("live  shards=%d: %.0f replies/s", n, x)
	}
	predicted := make(map[int]float64)
	for _, n := range shardCounts {
		x := simcpuThroughput(n, spin.Seconds(), 8*n)
		predicted[n] = x
		t.Logf("model shards=%d: %.0f replies/s", n, x)
	}

	for _, n := range []int{2, 4} {
		liveF := measured[n] / measured[1]
		simF := predicted[n] / predicted[1]
		drift := math.Abs(liveF-simF) / simF
		t.Logf("1->%d scaling: live %.2fx vs model %.2fx (drift %.0f%%)", n, liveF, simF, drift*100)
		if drift > 0.40 {
			t.Errorf("1->%d scaling drifted %.0f%% from the P-processor model (live %.2fx, model %.2fx)",
				n, drift*100, liveF, simF)
		}
	}
	if f := measured[4] / measured[1]; f < 2.5 {
		t.Errorf("1->4 shard scaling = %.2fx, want >= 2.5x", f)
	}
}

// measureShardThroughput runs an n-shard server under a spinning
// handler and closed-loop keep-alive clients, and returns the
// steady-state reply rate from the shard-merged counters. 8
// connections per shard make an accidentally empty reuseport bucket
// (the kernel hashes connections, it does not deal them) vanishingly
// unlikely, while each client spends its life blocked on the socket,
// not competing with the shards for cycles.
func measureShardThroughput(t *testing.T, shards int, spin, window time.Duration) float64 {
	t.Helper()
	cfg := core.DefaultConfig(core.MapStore{"/w.txt": []byte("shard-sweep")})
	cfg.Shards = shards
	cfg.HandlerFault = func(string) core.Fault { return core.Fault{Spin: spin} }
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if srv.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", srv.NumShards(), shards)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	req := "GET /w.txt HTTP/1.1\r\nHost: sut\r\nConnection: keep-alive\r\n\r\n"
	for i := 0; i < 8*shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			br := bufio.NewReader(c)
			for !stop.Load() {
				c.SetDeadline(time.Now().Add(10 * time.Second))
				if _, err := io.WriteString(c, req); err != nil {
					return
				}
				resp, err := http.ReadResponse(br, nil)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	time.Sleep(window / 4) // warm-up: conns spread, caches settle
	r0 := srv.Stats().Replies
	time.Sleep(window)
	r1 := srv.Stats().Replies
	stop.Store(true)
	wg.Wait()
	if r1 <= r0 {
		t.Fatalf("shards=%d: no replies in the measurement window", shards)
	}
	return float64(r1-r0) / window.Seconds()
}

// simcpuThroughput predicts closed-loop throughput for P processors
// with `clients` always-runnable jobs of `service` CPU-seconds each:
// every completion immediately resubmits, the fluid processor-sharing
// limit of the live sweep's keep-alive clients.
func simcpuThroughput(procs int, service float64, clients int) float64 {
	e := sim.NewEngine()
	pool := simcpu.NewPool(e, simcpu.Params{Processors: procs})
	var resubmit func()
	resubmit = func() { pool.Submit(service, resubmit) }
	for i := 0; i < clients; i++ {
		pool.Submit(service, resubmit)
	}
	const horizon = 20.0
	e.RunUntil(horizon)
	return float64(pool.CompletedJobs()) / float64(e.Now())
}

// TestShardScalingSweepShape verifies the sweep harness itself on any
// machine: the simcpu closed-loop predictor must reproduce the exact
// n/S law the drift gate leans on, so a wrong prediction can never
// silently absorb a real scaling regression into the 40% budget.
func TestShardScalingSweepShape(t *testing.T) {
	const service = 1e-3
	base := simcpuThroughput(1, service, 8)
	for _, n := range []int{1, 2, 4} {
		got := simcpuThroughput(n, service, 8*n)
		wantFactor := float64(n)
		if f := got / base; math.Abs(f-wantFactor) > 0.02*wantFactor {
			t.Errorf("model 1->%d factor = %.3f, want %.3f (processor-sharing law broken)", n, f, wantFactor)
		}
		if math.Abs(got-float64(n)/service) > 0.02*float64(n)/service {
			t.Errorf("model throughput(%d) = %.0f, want %.0f", n, got, float64(n)/service)
		}
	}
}
