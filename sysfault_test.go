//go:build linux

package repro

// sysfault_test.go is the deterministic fault-injection suite: it arms
// the internal/sysfault seam with seeded plans and drives both live
// servers and the proxy tier through the resource-exhaustion failure
// modes the robustness work hardens against — accept-time fd
// exhaustion, ENOBUFS and short writes, sendfile failures mid-response,
// upstream connect storms, and peer resets mid-write.
//
// Every test holds the same three claims:
//
//   - Survival: replies keep flowing under the fault, the post-run
//     probe answers 200, and the watchdog reports no stalled loop.
//   - Accounting: the server's hardening counters agree with the
//     injector's fired-decision log — every absorbed fault is counted,
//     no fault is double-counted.
//   - Determinism: the live injection stream is byte-identical to an
//     offline re-enumeration from the same seed and plan, so any
//     failure here reproduces exactly from SYSFAULT_SEED.
//
// The load side stays on the Go net package (unrouted by the seam), so
// injections fire only in the code under test.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/docroot"
	"repro/internal/mtserver"
	"repro/internal/obs"
	"repro/internal/obs/rollup"
	"repro/internal/overload"
	"repro/internal/proxy"
	"repro/internal/sysfault"
)

// sysfaultSeed returns the suite's injection seed: SYSFAULT_SEED when
// set (the CI matrix sets 1..3), else 1. Every plan in this file is
// evaluated as a pure function of this seed, so a failing run is
// reproduced by re-running with the same value.
func sysfaultSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("SYSFAULT_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("bad SYSFAULT_SEED %q: %v", v, err)
	}
	return seed
}

// installFaults compiles plan under seed, arms the process-wide seam,
// and registers both the disarm and the failure-artifact dump. Tests
// disarm explicitly (sysfault.Uninstall) before their post-run probes;
// the cleanup is the safety net that keeps a failed test from leaking
// an armed injector into the next one.
func installFaults(t *testing.T, name string, seed uint64, plan string) *sysfault.Injector {
	t.Helper()
	rules, err := sysfault.ParsePlan(plan)
	if err != nil {
		t.Fatalf("plan %q: %v", plan, err)
	}
	inj := sysfault.New(seed, rules...)
	sysfault.Install(inj)
	t.Cleanup(sysfault.Uninstall)
	dumpDecisionsOnFailure(t, name, plan, inj)
	return inj
}

// dumpDecisionsOnFailure ships the injector's call/fire accounting and
// full fired-decision log as a build artifact when the test fails and
// OBS_ARTIFACT_DIR is set — alongside the trace-ring dump, it is the
// complete record needed to replay the failure offline.
func dumpDecisionsOnFailure(t *testing.T, name, plan string, inj *sysfault.Injector) {
	t.Cleanup(func() {
		dir := os.Getenv("OBS_ARTIFACT_DIR")
		if !t.Failed() || dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "seed %d plan %q\n", inj.Seed(), plan)
		st := inj.Stats()
		for s := sysfault.Site(0); int(s) < sysfault.NumSites; s++ {
			if st[s].Calls == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s: calls=%d fires=%d\n", s, st[s].Calls, st[s].Fires)
		}
		for _, d := range inj.Decisions() {
			fmt.Fprintf(&b, "%s\n", d)
		}
		path := filepath.Join(dir, name+"-decisions.txt")
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Logf("writing decision dump: %v", err)
			return
		}
		t.Logf("injection decisions dumped to %s", path)
	})
}

// requireSeededReplay asserts the determinism contract: for each site,
// the decisions the live run fired must match, index for index and
// errno for errno, an offline re-enumeration from a fresh injector
// built with the same seed and plan. Probability rules are a pure hash
// of (seed, site, index) so the replay is exact under any concurrency;
// count-budgeted rules consume their budget in call order, so pass
// only sites driven by a single goroutine when the plan uses count.
func requireSeededReplay(t *testing.T, seed uint64, plan string, inj *sysfault.Injector, sites ...sysfault.Site) {
	t.Helper()
	stats := inj.Stats()
	var total uint64
	for _, st := range stats {
		total += st.Fires
	}
	if total >= 4096 {
		// The retained decision log is capped; comparing a truncated
		// log would report false mismatches.
		t.Logf("replay check skipped: %d fires exceed the retained log", total)
		return
	}
	live := inj.Decisions()
	for _, s := range sites {
		offline := sysfault.New(seed, sysfault.MustParsePlan(plan)...)
		var want []sysfault.Decision
		for i := uint64(0); i < stats[s].Calls; i++ {
			if d, ok := offline.Step(s); ok {
				want = append(want, d)
			}
		}
		var got []sysfault.Decision
		for _, d := range live {
			if d.Site == s {
				got = append(got, d)
			}
		}
		// The shared log interleaves sites in fire order; per-site
		// decisions are compared in index order.
		sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
		if len(got) != len(want) {
			t.Errorf("site %s: live run fired %d decisions, offline replay fired %d",
				s, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("site %s: decision %d diverged: live %v, replay %v",
					s, i, got[i], want[i])
			}
		}
	}
}

// countFires tallies the live decisions at site whose errno matches
// (errno 0 matches short-transfer injections).
func countFires(inj *sysfault.Injector, site sysfault.Site, errno syscall.Errno) int64 {
	var n int64
	for _, d := range inj.Decisions() {
		if d.Site == site && d.Errno == errno {
			n++
		}
	}
	return n
}

// sysfaultGet fetches one object on a fresh connection and returns the
// status and full body — the byte-correctness probe under injection.
func sysfaultGet(addr, path string, timeout time.Duration) (int, []byte, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	req := "GET " + path + " HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n"
	if _, err := c.Write([]byte(req)); err != nil {
		return 0, nil, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(c), nil)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// patternBody builds a body whose every byte encodes its offset, so a
// resumed-at-the-wrong-offset or double-delivered range cannot pass
// the byte-equality checks below (an all-zero body would).
func patternBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

// faultServer is one live server wired for the fault suite: stall
// watchdog, observability plane, and typed handles for the hardening
// counters the tests audit.
type faultServer struct {
	addr string
	stop func()
	wd   *overload.Watchdog
	pl   *obs.Plane
	nio  *core.Server
	mt   *mtserver.Server
}

// startFaultServer starts one server of the given kind. The core runs
// Workers: 1 so its accept and write sites are single-goroutine call
// streams (count-budgeted plans replay exactly); the thread pool runs
// a small fixed pool — its fault handling is per-connection, so thread
// count only affects interleaving, which the probability rules are
// immune to by construction.
func startFaultServer(t *testing.T, kind string, store core.Store, root *docroot.Root) faultServer {
	t.Helper()
	wd, err := overload.NewWatchdog(overload.WatchdogConfig{Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pl := obs.NewPlane(4096)
	switch kind {
	case "nio":
		cfg := core.DefaultConfig(store)
		cfg.Workers = 1
		cfg.Docroot = root
		cfg.Watchdog = wd
		cfg.Obs = pl
		srv, err := core.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		fs := faultServer{addr: srv.Addr(), stop: func() { srv.Stop(); wd.Stop() }, wd: wd, pl: pl, nio: srv}
		t.Cleanup(fs.stop)
		return fs
	case "mt":
		cfg := mtserver.DefaultConfig(store)
		cfg.Threads = 8
		cfg.Docroot = root
		cfg.Watchdog = wd
		cfg.Obs = pl
		srv, err := mtserver.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		fs := faultServer{addr: srv.Addr(), stop: func() { srv.Stop(); wd.Stop() }, wd: wd, pl: pl, mt: srv}
		t.Cleanup(fs.stop)
		return fs
	}
	t.Fatalf("unknown server kind %q", kind)
	return faultServer{}
}

// TestSysfaultAcceptEMFILESurvival: fault class 1 — descriptor
// exhaustion at accept time. Injected EMFILE does not consume the
// pending connection (the kernel keeps it queued), so the reserve-fd
// recovery plus the accept-gate backoff must deliver every client
// eventually: each fetch ends in a 200 with exact bytes or, when it
// arrives exactly during a recovery drain, a deliberate 503 shed.
func TestSysfaultAcceptEMFILESurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	body := patternBody(4 << 10)
	for _, kind := range []string{"nio", "mt"} {
		t.Run(kind, func(t *testing.T) {
			seed := sysfaultSeed(t)
			srv := startFaultServer(t, kind, core.MapStore{"/obj/0": body}, nil)
			dumpRingOnFailure(t, "sysfault-accept-"+kind, srv.pl)
			const plan = "accept:emfile:0.5"
			inj := installFaults(t, "sysfault-accept-"+kind, seed, plan)

			oks, sheds := 0, 0
			for i := 0; i < 50; i++ {
				status, got, err := sysfaultGet(srv.addr, "/obj/0", 3*time.Second)
				if err != nil {
					t.Fatalf("fetch %d under accept EMFILE: %v", i, err)
				}
				switch status {
				case 200:
					if !bytes.Equal(got, body) {
						t.Fatalf("fetch %d: body corrupted (%d bytes, want %d)", i, len(got), len(body))
					}
					oks++
				case 503:
					sheds++ // the recovery drain sheds the one connection it frees a slot for
				default:
					t.Fatalf("fetch %d: status %d, want 200 or 503", i, status)
				}
			}
			if oks == 0 {
				t.Fatalf("no successful replies under accept EMFILE (sheds=%d)", sheds)
			}

			sysfault.Uninstall()
			fires := int64(inj.Stats()[sysfault.SiteAccept].Fires)
			if fires == 0 {
				t.Fatal("plan fired no accept faults; the test exercised nothing")
			}
			var emfile, backoffs int64
			if srv.nio != nil {
				st := srv.nio.Stats()
				emfile, backoffs = st.AcceptEMFILE, st.AcceptBackoffs
			} else {
				st := srv.mt.Stats()
				emfile, backoffs = st.AcceptEMFILE, st.AcceptBackoffs
			}
			// The recovery path's own drain accept can draw a fired
			// EMFILE too (uncounted by design), so the counter is
			// bounded by the fires, not equal to them.
			if emfile == 0 || emfile > fires {
				t.Errorf("accept_emfile = %d, want in [1, %d]", emfile, fires)
			}
			if backoffs == 0 {
				t.Error("accept_backoffs = 0: exhausted accepts never engaged the gate")
			}
			t.Logf("%s: %d ok, %d shed, %d injected EMFILE, %d absorbed, %d backoffs",
				kind, oks, sheds, fires, emfile, backoffs)

			requireSeededReplay(t, seed, plan, inj, sysfault.SiteAccept)
			requireAlive(t, srv.addr)
			requireWatchdogClean(t, srv.wd)
		})
	}
}

// TestSysfaultWriteFaultsByteCorrect: fault class 2 — short writes and
// transient ENOBUFS mid-response. Both must be absorbed invisibly:
// every response completes with exact bytes. The core additionally
// proves exact accounting (write_stalls equals the injected ENOBUFS
// count); the thread pool proves its resume loop counted every
// injected partial.
func TestSysfaultWriteFaultsByteCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	body := patternBody(48 << 10)
	plans := map[string]string{
		// ENOBUFS tears a blocking connection down (there is no write
		// re-arm to park on), so the thread-pool plan injects only
		// partials; the reset-mid-write test covers its error path.
		"nio": "write:short:0.25:len=3;write:enobufs:0.1",
		"mt":  "write:short:0.25:len=3",
	}
	for _, kind := range []string{"nio", "mt"} {
		t.Run(kind, func(t *testing.T) {
			seed := sysfaultSeed(t)
			srv := startFaultServer(t, kind, core.MapStore{"/obj/0": body}, nil)
			dumpRingOnFailure(t, "sysfault-write-"+kind, srv.pl)
			plan := plans[kind]
			inj := installFaults(t, "sysfault-write-"+kind, seed, plan)

			for i := 0; i < 40; i++ {
				status, got, err := sysfaultGet(srv.addr, "/obj/0", 3*time.Second)
				if err != nil {
					t.Fatalf("fetch %d under write faults: %v", i, err)
				}
				if status != 200 {
					t.Fatalf("fetch %d: status %d, want 200", i, status)
				}
				if !bytes.Equal(got, body) {
					t.Fatalf("fetch %d: body corrupted under short writes (%d bytes, want %d)",
						i, len(got), len(body))
				}
			}

			sysfault.Uninstall()
			shorts := countFires(inj, sysfault.SiteWrite, 0)
			if shorts == 0 {
				t.Fatal("plan fired no short writes; the resume paths were not exercised")
			}
			if srv.nio != nil {
				st := srv.nio.Stats()
				enobufs := countFires(inj, sysfault.SiteWrite, syscall.ENOBUFS)
				if st.WriteStalls != enobufs {
					t.Errorf("write_stalls = %d, want exactly the %d injected ENOBUFS", st.WriteStalls, enobufs)
				}
				t.Logf("nio: %d shorts, %d ENOBUFS, all 40 bodies exact", shorts, enobufs)
			} else {
				st := srv.mt.Stats()
				if st.ShortWrites < shorts {
					t.Errorf("short_writes = %d, want >= the %d injected partials", st.ShortWrites, shorts)
				}
				t.Logf("mt: %d injected partials, %d resumed, all 40 bodies exact", shorts, st.ShortWrites)
			}

			requireSeededReplay(t, seed, plan, inj, sysfault.SiteWrite)
			requireAlive(t, srv.addr)
			requireWatchdogClean(t, srv.wd)
		})
	}
}

// TestSysfaultSendfileFallbackByteCorrect: fault class 3 — sendfile(2)
// failing mid-response on an fd-backed docroot entry. The response
// must switch to buffered delivery from the same offset: every fetch
// is compared against a pre-injection golden fetch, and each server's
// fallback counter must equal the injected error count exactly (one
// switch per failed call; a switched response never calls sendfile
// again).
func TestSysfaultSendfileFallbackByteCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	dir := t.TempDir()
	body := patternBody(96 << 10)
	if err := os.MkdirAll(filepath.Join(dir, "obj"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "obj", "0"), body, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"nio", "mt"} {
		t.Run(kind, func(t *testing.T) {
			seed := sysfaultSeed(t)
			// MemLimit far below the object size forces the fd-backed
			// entry, so delivery starts on the sendfile path.
			root, err := docroot.New(docroot.Config{Dir: dir, CacheBytes: 1 << 20, MemLimit: 8 << 10})
			if err != nil {
				t.Fatal(err)
			}
			srv := startFaultServer(t, kind, nil, root)
			dumpRingOnFailure(t, "sysfault-sendfile-"+kind, srv.pl)

			status, golden, err := sysfaultGet(srv.addr, "/obj/0", 3*time.Second)
			if err != nil || status != 200 || !bytes.Equal(golden, body) {
				t.Fatalf("pre-injection golden fetch: status %d err %v (%d bytes)", status, err, len(golden))
			}

			const plan = "sendfile:eio:0.35;sendfile:einval:0.35"
			inj := installFaults(t, "sysfault-sendfile-"+kind, seed, plan)
			for i := 0; i < 25; i++ {
				status, got, err := sysfaultGet(srv.addr, "/obj/0", 3*time.Second)
				if err != nil {
					t.Fatalf("fetch %d under sendfile faults: %v", i, err)
				}
				if status != 200 {
					t.Fatalf("fetch %d: status %d, want 200", i, status)
				}
				if !bytes.Equal(got, golden) {
					t.Fatalf("fetch %d: fallback corrupted the body (%d bytes, want %d)",
						i, len(got), len(golden))
				}
			}

			sysfault.Uninstall()
			errFires := countFires(inj, sysfault.SiteSendfile, syscall.EIO) +
				countFires(inj, sysfault.SiteSendfile, syscall.EINVAL)
			if errFires == 0 {
				t.Fatal("plan fired no sendfile errors; the fallback was not exercised")
			}
			var fallbacks int64
			if srv.nio != nil {
				fallbacks = srv.nio.Stats().SendfileFallbacks
			} else {
				fallbacks = srv.mt.Stats().SendfileFallbacks
			}
			if fallbacks != errFires {
				t.Errorf("sendfile_fallbacks = %d, want exactly the %d injected errors", fallbacks, errFires)
			}
			t.Logf("%s: %d injected sendfile errors, %d fallbacks, all 25 bodies exact", kind, errFires, fallbacks)

			requireSeededReplay(t, seed, plan, inj, sysfault.SiteSendfile)
			requireAlive(t, srv.addr)
			requireWatchdogClean(t, srv.wd)
		})
	}
}

// TestSysfaultProxyConnectStormRecovery: fault class 4 — an upstream
// connect-failure storm against the tier. A finite budget of injected
// ECONNREFUSED must drive the ejection/cooldown/readmission machinery
// (not wedge the pool): the backend is ejected, readmitted after the
// cooldown, re-ejected while the storm lasts, and once the budget is
// spent the tier converges back to serving — with a pre-warmed
// upstream socket parked by the re-admission.
func TestSysfaultProxyConnectStormRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := sysfaultSeed(t)
	body := patternBody(8 << 10)
	backend := startFaultServer(t, "nio", core.MapStore{"/obj/0": body}, nil)
	dumpRingOnFailure(t, "sysfault-proxy-storm", backend.pl)
	// The backend's admin + a one-sweep rollup collector so a failing
	// run ships the tier's merged telemetry next to the decision log.
	admin, err := obs.NewAdmin("127.0.0.1:0", obs.AdminConfig{
		Name:  "b0",
		Stats: func() []obs.Field { return core.StatsFields(backend.nio.Stats()) },
		Plane: backend.pl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	coll := rollup.NewCollector()
	dumpRollupOnFailure(t, "sysfault-proxy-storm", coll)
	scr := rollup.NewScraper(coll, []rollup.Target{{Name: "b0", Addr: admin.Addr()}}, time.Hour)
	t.Cleanup(scr.Sweep) // LIFO: the final sweep runs before the dump renders
	p := startProxyTier(t, 1, []proxy.BackendConfig{{Addr: backend.addr, AdminAddr: admin.Addr(), Name: "b0"}}, func(cfg *proxy.Config) {
		cfg.FailAfter = 2
		cfg.RelayAttempts = 2
		cfg.ReadmitAfter = 40 * time.Millisecond
	})

	// Installed before any proxy traffic so no idle upstream socket
	// predates the storm; prob 1 + count=9 refuses exactly the first
	// nine dials, whoever issues them (relay retries or prewarms).
	const plan = "connect:econnrefused:1:count=9"
	inj := installFaults(t, "sysfault-proxy-storm", seed, plan)

	stormErrs := 0
	waitUntil(t, 10*time.Second, func() bool {
		status, got, err := sysfaultGet(p.Addr(), "/obj/0", 2*time.Second)
		if err != nil || status != 200 {
			stormErrs++
			time.Sleep(5 * time.Millisecond)
			return false
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("post-recovery body corrupted (%d bytes, want %d)", len(got), len(body))
		}
		return true
	}, "tier to recover from the connect storm")

	st := p.Stats()
	if fires := int64(inj.Stats()[sysfault.SiteConnect].Fires); fires != 9 {
		t.Errorf("connect fires = %d, want the full budget of 9", fires)
	}
	if st.UpstreamErrors < 9 {
		t.Errorf("upstream_errors = %d, want >= 9 (one per refused dial)", st.UpstreamErrors)
	}
	if st.Ejections == 0 || st.Readmissions == 0 {
		t.Errorf("ejections = %d, readmissions = %d: the storm never cycled the health machinery",
			st.Ejections, st.Readmissions)
	}
	if stormErrs == 0 {
		t.Error("no client-visible errors during the storm: the injection did not bite")
	}
	// The surviving re-admission pre-warms one upstream socket; the
	// dial happens on the loop iteration after the readmitting relay.
	waitUntil(t, 2*time.Second, func() bool { return p.Stats().Prewarms >= 1 },
		"re-admission to pre-warm an upstream connection")

	sysfault.Uninstall()
	for i := 0; i < 10; i++ {
		status, got, err := sysfaultGet(p.Addr(), "/obj/0", 2*time.Second)
		if err != nil || status != 200 || !bytes.Equal(got, body) {
			t.Fatalf("post-storm fetch %d: status %d err %v", i, status, err)
		}
	}
	t.Logf("storm: %d client errors, %d upstream errors, %d ejections, %d readmissions, %d prewarms",
		stormErrs, st.UpstreamErrors, st.Ejections, st.Readmissions, p.Stats().Prewarms)

	// The proxy dials from its single event loop, so the connect site
	// is a single-goroutine stream and the count-budgeted rule replays
	// exactly.
	requireSeededReplay(t, seed, plan, inj, sysfault.SiteConnect)
	requireWatchdogClean(t, backend.wd)
}

// TestSysfaultProxyLocalResShed: the tier-side half of fault class 4 —
// the proxy's own process runs out of sockets (EMFILE at socket(2))
// while dialing. That is the harness's failure, not the backend's: the
// affected requests shed with a tier-attributed 503 and the backend's
// health streak stays untouched, so a local fd storm cannot eject a
// healthy upstream.
func TestSysfaultProxyLocalResShed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	seed := sysfaultSeed(t)
	body := patternBody(8 << 10)
	backend := startFaultServer(t, "nio", core.MapStore{"/obj/0": body}, nil)
	p := startProxyTier(t, 1, []proxy.BackendConfig{{Addr: backend.addr, Name: "b0"}}, nil)

	const plan = "socket:emfile:1:count=3"
	inj := installFaults(t, "sysfault-proxy-localres", seed, plan)

	// No idle upstream exists yet, so each of the first three requests
	// dials, hits the injected EMFILE, and must shed immediately — no
	// retry (the next socket call would hit the same wall).
	for i := 0; i < 3; i++ {
		status, _, err := sysfaultGet(p.Addr(), "/obj/0", 2*time.Second)
		if err != nil {
			t.Fatalf("request %d under socket EMFILE: %v", i, err)
		}
		if status != 503 {
			t.Fatalf("request %d: status %d, want a 503 shed", i, status)
		}
	}
	status, got, err := sysfaultGet(p.Addr(), "/obj/0", 2*time.Second)
	if err != nil || status != 200 || !bytes.Equal(got, body) {
		t.Fatalf("request after budget spent: status %d err %v, want 200", status, err)
	}

	sysfault.Uninstall()
	st := p.Stats()
	if st.LocalResErrors != 3 {
		t.Errorf("local_res_errors = %d, want exactly the 3 injected EMFILEs", st.LocalResErrors)
	}
	if st.Ejections != 0 {
		t.Errorf("ejections = %d: local resource exhaustion blamed a healthy backend", st.Ejections)
	}
	requireSeededReplay(t, seed, plan, inj, sysfault.SiteSocket)
	requireWatchdogClean(t, backend.wd)
}

// TestSysfaultResetMidWriteBounded: fault class 5 — peers resetting
// connections mid-response. Each injected ECONNRESET kills exactly one
// in-flight response (the client sees a truncated body); every other
// response completes byte-exact, the damage stays bounded by the
// injection count, and the core's write_resets counter accounts for
// every one.
func TestSysfaultResetMidWriteBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	body := patternBody(48 << 10)
	for _, kind := range []string{"nio", "mt"} {
		t.Run(kind, func(t *testing.T) {
			seed := sysfaultSeed(t)
			srv := startFaultServer(t, kind, core.MapStore{"/obj/0": body}, nil)
			dumpRingOnFailure(t, "sysfault-reset-"+kind, srv.pl)
			const plan = "write:econnreset:0.12"
			inj := installFaults(t, "sysfault-reset-"+kind, seed, plan)

			const attempts = 60
			oks, failures := 0, 0
			for i := 0; i < attempts; i++ {
				status, got, err := sysfaultGet(srv.addr, "/obj/0", 3*time.Second)
				if err != nil {
					failures++ // the injected reset, surfaced as a truncated read
					continue
				}
				if status != 200 {
					t.Fatalf("fetch %d: status %d, want 200", i, status)
				}
				if !bytes.Equal(got, body) {
					t.Fatalf("fetch %d: surviving response corrupted (%d bytes, want %d)",
						i, len(got), len(body))
				}
				oks++
			}

			sysfault.Uninstall()
			fires := int64(inj.Stats()[sysfault.SiteWrite].Fires)
			if fires == 0 {
				t.Fatal("plan fired no resets; the teardown path was not exercised")
			}
			// Bounded damage: one dead response per fire, nothing more.
			if int64(failures) != fires {
				t.Errorf("client failures = %d, want exactly the %d injected resets", failures, fires)
			}
			if oks <= failures {
				t.Errorf("error budget blown: %d ok vs %d failed of %d", oks, failures, attempts)
			}
			if srv.nio != nil {
				if st := srv.nio.Stats(); st.WriteResets != fires {
					t.Errorf("write_resets = %d, want exactly the %d injected resets", st.WriteResets, fires)
				}
			}
			t.Logf("%s: %d ok, %d reset by injection (fires=%d)", kind, oks, failures, fires)

			requireSeededReplay(t, seed, plan, inj, sysfault.SiteWrite)
			requireAlive(t, srv.addr)
			requireWatchdogClean(t, srv.wd)
		})
	}
}
