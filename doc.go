// Package repro reproduces "Evaluating the Scalability of Java
// Event-Driven Web Servers" (Beltran, Carrera, Torres, Ayguadé; ICPP
// 2004) in Go.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per figure of the paper's evaluation, each
// regenerating the figure's series on the simulated testbed and
// reporting the headline metric, plus ablation benches for the design
// choices DESIGN.md calls out. The implementation lives under internal/
// (see DESIGN.md for the map) and runnable entry points under cmd/ and
// examples/.
package repro
